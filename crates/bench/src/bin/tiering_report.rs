//! Multi-path tier-placement sweep for the NVMe optimizer pipeline.
//!
//! ZeRO-Infinity streams optimizer state from one backing tier; the
//! placement-plan layer splits each shard across CPU DRAM *and* NVMe
//! (MLP-Offload-style multi-path tiering) and drives both paths
//! concurrently inside the pipelined step. This bench measures what
//! that buys on a throttled-NVMe node whose CPU pool is deliberately
//! too small to hold the optimizer state outright:
//!
//! * **all-NVMe** (0‰) and **all-CPU** (1000‰) are the single-tier
//!   baselines. All-CPU is expected to be *infeasible* here — the CPU
//!   pool fits roughly half the optimizer state plus working buffers,
//!   which is exactly the regime the split targets — and is reported as
//!   such rather than measured.
//! * **split ladders** (125/250/500‰) stream the DRAM-resident stripes
//!   over the cp path while the NVMe stripes ride the nc hop.
//!
//! The report gate: the best split's aggregate optimizer-step bandwidth
//! must exceed the best *feasible* single tier's, and the trace must
//! prove the two paths really ran concurrently (an nc-hop span and a
//! cp-path span overlapping in time). Writes `BENCH_tiering.json`
//! (argv[1] overrides) plus a Chrome trace of the best split config
//! (`*_trace.json` next to it); exits nonzero when the gate fails so
//! the CI `tiering` stage can lean on it directly. `--quick` shrinks
//! the measurement for CI.

use zi_sync::Arc;
use std::time::{Duration, Instant};

use zero_infinity::{NodeResources, Strategy, ZeroEngine};
use zi_bench::report::{hrow, row, section, write_json_report, Json};
use zi_memory::NodeMemorySpec;
use zi_model::{ParamRegistry, ParamStore};
use zi_nvme::{MemBackend, StorageBackend, ThrottledBackend};
use zi_optim::AdamConfig;
use zi_tensor::Tensor;
use zi_trace::export::chrome_trace_json;
use zi_trace::{Category, Event};

const NUMEL: usize = 1 << 17;
const CHUNK: usize = 1 << 15;
/// Device shaping for the MemBackend (tmpfs-speed answers would hide
/// the tier asymmetry the split exploits): a budget-NVMe 0.5 GB/s
/// sustained with 100 µs access latency. The 128 KB chunk reads take
/// ~256 µs of line time each, so the step is *bandwidth*-bound — the
/// regime where moving stripes onto the cp path buys aggregate
/// bandwidth, which is the effect under test.
const NVME_BYTES_PER_SEC: f64 = 5e8;
const NVME_LATENCY: Duration = Duration::from_micros(100);
/// The sweep: single-tier baselines bracketing the split ladder.
const PERMILLES: [usize; 5] = [0, 125, 250, 500, 1000];

/// Optimizer bytes one step moves: master+m+v read, then written back.
const STEP_BYTES: u64 = (6 * NUMEL * 4) as u64;

struct ConfigResult {
    permille: usize,
    feasible: bool,
    error: String,
    median_step_secs: f64,
    bandwidth_bps: f64,
    step_io_overlap: u64,
    nc_cp_overlap_ns: u64,
    events: Vec<Event>,
}

impl ConfigResult {
    fn infeasible(permille: usize, error: String) -> Self {
        ConfigResult {
            permille,
            feasible: false,
            error,
            median_step_secs: 0.0,
            bandwidth_bps: 0.0,
            step_io_overlap: 0,
            nc_cp_overlap_ns: 0,
            events: Vec::new(),
        }
    }
}

/// Total time (ns) during which at least one nc-hop span and at least
/// one cp-path span were simultaneously open — the trace-level proof
/// that the split really drove both paths at once.
fn nc_cp_overlap_ns(events: &[Event]) -> u64 {
    let spans = |cat: Category| {
        let mut v: Vec<(u64, u64)> = events
            .iter()
            .filter(|e| e.cat == cat && e.dur_ns > 0)
            .map(|e| (e.start_ns, e.start_ns + e.dur_ns))
            .collect();
        v.sort_unstable();
        // Merge into disjoint busy intervals.
        let mut merged: Vec<(u64, u64)> = Vec::new();
        for (s, e) in v {
            match merged.last_mut() {
                Some(last) if s <= last.1 => last.1 = last.1.max(e),
                _ => merged.push((s, e)),
            }
        }
        merged
    };
    let nc = spans(Category::NcTransfer);
    let cp = spans(Category::CpTransfer);
    let (mut i, mut j, mut total) = (0usize, 0usize, 0u64);
    while i < nc.len() && j < cp.len() {
        let lo = nc[i].0.max(cp[j].0);
        let hi = nc[i].1.min(cp[j].1);
        if lo < hi {
            total += hi - lo;
        }
        if nc[i].1 <= cp[j].1 {
            i += 1;
        } else {
            j += 1;
        }
    }
    total
}

fn run_config(permille: usize, warmup: usize, measured: usize) -> ConfigResult {
    // The CPU pool holds ~2.9 optimizer-buffer equivalents: enough for
    // the gradient shard plus up to half the optimizer state (a 500‰
    // split needs 1.5 + 1 = 2.5), but not the whole 3-buffer state —
    // 1000‰ must OOM. This is the memory-wall regime multi-path tiering
    // targets: the fast tier that cannot hold the state outright still
    // contributes its bandwidth.
    let cpu_budget = (NUMEL as u64 * 4) * 29 / 10;
    let spec = NodeMemorySpec::test_spec(1, 1 << 26, cpu_budget, 1 << 27);
    let backend = Arc::new(ThrottledBackend::new(
        MemBackend::new(),
        NVME_BYTES_PER_SEC,
        NVME_LATENCY,
    )) as Arc<dyn StorageBackend>;
    let node = NodeResources::with_backend(&spec, 1, backend);
    let mut reg = ParamRegistry::new();
    let id = reg.register("big", &[NUMEL], 3, 0.1, 0.0);
    let mut engine = match ZeroEngine::new(
        &reg,
        Strategy::infinity_nvme()
            .with_optimizer_chunk(CHUNK)
            .with_step_pipeline_depth(2)
            .with_optimizer_cpu_permille(permille),
        node.offload_manager(),
        node.group.communicator(0),
        AdamConfig::default(),
    ) {
        Ok(e) => e,
        Err(e) => return ConfigResult::infeasible(permille, e.to_string()),
    };
    let grad = Tensor::randn_seeded(&[NUMEL], 5, 0.1);

    for _ in 0..warmup {
        if let Err(e) = engine.add_grad(id, &grad).and_then(|_| engine.step()) {
            return ConfigResult::infeasible(permille, e.to_string());
        }
    }
    // Event window: only the measured steps count toward the overlap
    // evidence (warmup spans are discarded here).
    let mgr = node.offload_manager();
    let _ = mgr.tracer().take_events();
    let mut step_secs = Vec::with_capacity(measured);
    for _ in 0..measured {
        engine.add_grad(id, &grad).expect("grad");
        let start = Instant::now();
        engine.step().expect("step");
        step_secs.push(start.elapsed().as_secs_f64());
    }
    step_secs.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let median_step_secs = step_secs[step_secs.len() / 2];
    let stats = engine.stats();
    drop(engine);
    let events = mgr.tracer().take_events();

    ConfigResult {
        permille,
        feasible: true,
        error: String::new(),
        median_step_secs,
        bandwidth_bps: STEP_BYTES as f64 / median_step_secs,
        step_io_overlap: stats.step_io_overlap,
        nc_cp_overlap_ns: nc_cp_overlap_ns(&events),
        events,
    }
}

fn main() {
    let mut out_path = "BENCH_tiering.json".to_string();
    let mut quick = false;
    for arg in std::env::args().skip(1) {
        if arg == "--quick" {
            quick = true;
        } else {
            out_path = arg;
        }
    }
    let (warmup, measured) = if quick { (1, 3) } else { (2, 9) };

    section("Multi-path tier placement sweep (optimizer pipeline)");
    println!(
        "model: single {NUMEL}-element f32 parameter, chunk {CHUNK}, depth 2, \
         throttled NVMe (0.5 GB/s, 100 µs), CPU pool ~2.9 optimizer buffers, \
         {measured} measured steps after {warmup} warmup"
    );
    hrow(&["cpu ‰", "step (ms)", "agg GB/s", "io overlap", "nc∩cp (ms)", "status"]);

    let results: Vec<ConfigResult> =
        PERMILLES.iter().map(|&p| run_config(p, warmup, measured)).collect();
    let mut config_docs = Vec::new();
    for r in &results {
        if r.feasible {
            row(&[
                r.permille.to_string(),
                format!("{:.3}", r.median_step_secs * 1e3),
                format!("{:.3}", r.bandwidth_bps / 1e9),
                r.step_io_overlap.to_string(),
                format!("{:.3}", r.nc_cp_overlap_ns as f64 / 1e6),
                "ok".into(),
            ]);
        } else {
            row(&[
                r.permille.to_string(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                format!("infeasible: {}", r.error),
            ]);
        }
        config_docs.push(Json::Obj(vec![
            Json::field("cpu_permille", Json::Num(r.permille as f64)),
            Json::field("feasible", Json::Bool(r.feasible)),
            Json::field("error", Json::Str(r.error.clone())),
            Json::field("median_step_ms", Json::Num(r.median_step_secs * 1e3)),
            Json::field("aggregate_bandwidth_gbps", Json::Num(r.bandwidth_bps / 1e9)),
            Json::field("step_io_overlap", Json::Num(r.step_io_overlap as f64)),
            Json::field("nc_cp_overlap_ms", Json::Num(r.nc_cp_overlap_ns as f64 / 1e6)),
        ]));
    }

    let is_split = |p: usize| p > 0 && p < 1000;
    let best_single = results
        .iter()
        .filter(|r| r.feasible && !is_split(r.permille))
        .max_by(|a, b| a.bandwidth_bps.partial_cmp(&b.bandwidth_bps).expect("finite"));
    let best_split = results
        .iter()
        .filter(|r| r.feasible && is_split(r.permille))
        .max_by(|a, b| a.bandwidth_bps.partial_cmp(&b.bandwidth_bps).expect("finite"));
    let (best_single, best_split) = match (best_single, best_split) {
        (Some(s), Some(p)) => (s, p),
        _ => {
            eprintln!("tiering gate: a baseline or split configuration never completed");
            std::process::exit(1);
        }
    };
    let all_cpu_infeasible =
        results.iter().any(|r| r.permille == 1000 && !r.feasible);
    let exceeds = best_split.bandwidth_bps > best_single.bandwidth_bps;
    let concurrent = best_split.nc_cp_overlap_ns > 0;

    // Chrome-trace evidence for the winning split: the nc and cp spans
    // are visibly interleaved on the timeline.
    let trace_path = out_path.replace(".json", "_trace.json");
    let counters = zi_trace::CounterSnapshot::default();
    std::fs::write(&trace_path, chrome_trace_json(&best_split.events, &counters))
        .expect("write chrome trace");

    let doc = Json::Obj(vec![
        Json::field("bench", Json::Str("tiering".into())),
        Json::field("numel", Json::Num(NUMEL as f64)),
        Json::field("chunk", Json::Num(CHUNK as f64)),
        Json::field("quick", Json::Bool(quick)),
        Json::field("measured_steps", Json::Num(measured as f64)),
        Json::field("configs", Json::Arr(config_docs)),
        Json::field("best_single_tier_permille", Json::Num(best_single.permille as f64)),
        Json::field(
            "best_single_tier_bandwidth_gbps",
            Json::Num(best_single.bandwidth_bps / 1e9),
        ),
        Json::field("best_split_permille", Json::Num(best_split.permille as f64)),
        Json::field("best_split_bandwidth_gbps", Json::Num(best_split.bandwidth_bps / 1e9)),
        Json::field(
            "speedup_vs_single_tier",
            Json::Num(best_split.bandwidth_bps / best_single.bandwidth_bps),
        ),
        Json::field("all_cpu_infeasible", Json::Bool(all_cpu_infeasible)),
        Json::field("aggregate_exceeds_single_tier", Json::Bool(exceeds)),
        Json::field("concurrent_paths_proven", Json::Bool(concurrent)),
        Json::field("chrome_trace", Json::Str(trace_path.clone())),
    ]);
    write_json_report(std::path::Path::new(&out_path), &doc).expect("write json report");

    println!();
    println!(
        "best split {}‰: {:.3} GB/s vs best single tier ({}‰) {:.3} GB/s \
         ({:.2}x) — nc∩cp concurrency {:.3} ms{}",
        best_split.permille,
        best_split.bandwidth_bps / 1e9,
        best_single.permille,
        best_single.bandwidth_bps / 1e9,
        best_split.bandwidth_bps / best_single.bandwidth_bps,
        best_split.nc_cp_overlap_ns as f64 / 1e6,
        if all_cpu_infeasible { " — all-CPU infeasible (as designed)" } else { "" },
    );
    println!("wrote {out_path} and {trace_path}");

    if !exceeds || !concurrent {
        eprintln!(
            "tiering gate FAILED: exceeds_single_tier={exceeds} concurrent_paths={concurrent}"
        );
        std::process::exit(1);
    }
}
