//! Fig. 6b on the real engine: maximum hidden size vs tiling factor under
//! pre-fragmented GPU memory.
//!
//! The paper pre-fragments GPU memory into 2 GB chunks so no allocation
//! above 2 GB succeeds, then trains a single-layer transformer with
//! growing hidden sizes and tiling factors. We run the same experiment at
//! 1/8192 scale (256 KiB fragments, hidden sizes in the hundreds) on the
//! actual `ZeroEngine` + `TiledLinear` machinery: the *ratios* between
//! tiling factors are scale-free.

use zero_infinity::{Strategy, TiledLinear, ZeroEngine};
use zi_memory::NodeMemorySpec;
use zi_model::ParamRegistry;
use zi_optim::AdamConfig;
use zi_tensor::Tensor;
use zi_types::Result;

/// Fragment size, the scaled-down analogue of the paper's 2 GB chunks.
pub const FRAGMENT_BYTES: u64 = 256 * 1024;

/// One row of the Fig. 6b sweep.
#[derive(Debug, Clone, Copy)]
pub struct Fig6bRow {
    /// Tiling factor.
    pub tiles: usize,
    /// Largest hidden size that trains without OOM.
    pub max_hidden: usize,
}

/// Can a single `hidden -> 4*hidden` linear layer (the transformer's
/// largest operator, Eq. 4) run forward+backward with `tiles`-way
/// memory-centric tiling when no GPU allocation above
/// [`FRAGMENT_BYTES`] can succeed?
pub fn layer_fits(hidden: usize, tiles: usize) -> Result<bool> {
    // Plenty of total memory everywhere; the *fragmentation* is the
    // constraint, exactly as in the paper's setup.
    let spec = NodeMemorySpec::test_spec(1, 1 << 28, 1 << 28, 1 << 28);
    let node = zero_infinity::NodeResources::in_memory(&spec, 1);
    node.hierarchy.prefragment_gpu(0, FRAGMENT_BYTES);

    let mut reg = ParamRegistry::new();
    let tl = TiledLinear::register(&mut reg, "ffn", hidden, 4 * hidden, tiles, 7, 0.02)?;
    let mut engine = ZeroEngine::new(
        &reg,
        Strategy::infinity_cpu(),
        node.offload_manager(),
        node.group.communicator(0),
        AdamConfig::default(),
    )?;

    let x = Tensor::randn_seeded(&[2, hidden], 3, 0.1);
    let run = (|| -> Result<()> {
        let y = tl.forward(&mut engine, &x)?;
        let dy = Tensor::randn_seeded(&[2, 4 * hidden], 4, 0.1);
        let _dx = tl.backward(&mut engine, &x, &dy)?;
        drop(y);
        engine.step()?;
        Ok(())
    })();
    match run {
        Ok(()) => Ok(true),
        Err(e) if e.is_oom() => Ok(false),
        Err(e) => Err(e),
    }
}

/// Largest hidden size (from a doubling sweep starting at 64) that trains
/// with the given tiling factor.
pub fn max_hidden_size(tiles: usize) -> Result<usize> {
    let mut best = 0;
    let mut hidden = 64;
    while hidden <= 8192 {
        if layer_fits(hidden, tiles.min(4 * hidden))? {
            best = hidden;
            hidden *= 2;
        } else {
            break;
        }
    }
    Ok(best)
}

/// The full Fig. 6b sweep over tiling factors.
pub fn fig6b_rows() -> Result<Vec<Fig6bRow>> {
    [1usize, 2, 4, 8, 16]
        .into_iter()
        .map(|tiles| Ok(Fig6bRow { tiles, max_hidden: max_hidden_size(tiles)? }))
        .collect()
}

/// Sanity check used by benches: a tiled and untiled layer produce the
/// same output on an unfragmented engine.
pub fn tiled_untiled_agree(hidden: usize) -> Result<bool> {
    let spec = NodeMemorySpec::test_spec(1, 1 << 28, 1 << 28, 1 << 28);
    let node = zero_infinity::NodeResources::in_memory(&spec, 1);
    let mut reg = ParamRegistry::new();
    let tiled = TiledLinear::register(&mut reg, "t", hidden, 4 * hidden, 4, 7, 0.02)?;
    let untiled = TiledLinear::register(&mut reg, "u", hidden, 4 * hidden, 1, 7, 0.02)?;
    let mut engine = ZeroEngine::new(
        &reg,
        Strategy::infinity_cpu().with_f32_params(),
        node.offload_manager(),
        node.group.communicator(0),
        AdamConfig::default(),
    )?;
    let x = Tensor::randn_seeded(&[2, hidden], 3, 0.1);
    let yt = tiled.forward(&mut engine, &x)?;
    let yu = untiled.forward(&mut engine, &x)?;
    // Same seeds per tile differ from the single-tile layout, so compare
    // only shapes and finiteness here; exact math equivalence is covered
    // by the tiling unit tests against a shared parameter set.
    Ok(yt.shape() == yu.shape() && yt.data().iter().all(|v| v.is_finite()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiling_raises_the_hidden_ceiling() {
        let h1 = max_hidden_size(1).unwrap();
        let h4 = max_hidden_size(4).unwrap();
        let h16 = max_hidden_size(16).unwrap();
        assert!(h1 > 0, "untiled must fit something");
        assert!(h4 > h1, "4-way tiling must beat untiled: {h1} vs {h4}");
        assert!(h16 > h4, "16-way tiling must beat 4-way: {h4} vs {h16}");
        // Paper shape: 16-way tiling reaches ~8x the untiled hidden size
        // (8K -> 64K). Under our scaled fragments the ratio is the claim.
        assert!(h16 / h1 >= 4, "16-way/untiled ratio {} too small", h16 / h1);
    }

    #[test]
    fn tiled_layer_is_well_formed() {
        assert!(tiled_untiled_agree(128).unwrap());
    }
}
