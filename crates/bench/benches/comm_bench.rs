//! Bandwidth-centric partitioning micro-benchmark (paper Sec. 6.1,
//! Fig. 6c).
//!
//! Compares the two ways of getting an offloaded parameter to every GPU:
//! * **broadcast-based** (ZeRO-Offload style): one owner materializes the
//!   full parameter, everyone else receives it;
//! * **allgather-based** (ZeRO-Infinity): every rank contributes its
//!   1/dp shard.
//!
//! With real NCCL the volumes match; the win in the paper comes from the
//! slow-memory hop. Here we attach that hop: the owner (broadcast) reads
//! the whole parameter from the shared in-memory NVMe device, while the
//! allgather path reads only 1/dp per rank, in parallel.

use zi_sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use zi_comm::CommGroup;
use zi_nvme::{MemBackend, NvmeEngine, StorageBackend};

const PARAM_BYTES: usize = 1 << 20;

fn run_world(world: usize, broadcast: bool, eng: &Arc<NvmeEngine>) {
    let group = CommGroup::new(world);
    let mut handles = Vec::new();
    for (rank, comm) in group.communicators().into_iter().enumerate() {
        let eng = Arc::clone(eng);
        handles.push(zi_sync::thread::spawn(move || {
            if broadcast {
                // Rank 0 reads the full parameter from slow memory, then
                // broadcasts.
                let payload = if rank == 0 {
                    let t = eng.submit_read(0, PARAM_BYTES);
                    eng.wait(t).unwrap().unwrap()
                } else {
                    Vec::new()
                };
                let out = comm.broadcast_bytes(0, &payload);
                criterion::black_box(out.unwrap().len());
            } else {
                // Every rank reads its own shard in parallel, then
                // allgathers.
                let shard = PARAM_BYTES / world;
                let t = eng.submit_read((rank * shard) as u64, shard);
                let mine = eng.wait(t).unwrap().unwrap();
                let out = comm.allgather_bytes(&mine);
                criterion::black_box(out.unwrap().len());
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
}

fn bench_fetch_styles(c: &mut Criterion) {
    let backend = Arc::new(MemBackend::new());
    backend.write_at(0, &vec![3u8; PARAM_BYTES]).unwrap();
    let eng = Arc::new(NvmeEngine::new(
        Arc::clone(&backend) as Arc<dyn StorageBackend>,
        8,
    ));

    let mut group = c.benchmark_group("offload_fetch");
    group.throughput(Throughput::Bytes(PARAM_BYTES as u64));
    group.sample_size(10);
    for world in [2usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("broadcast", world),
            &world,
            |b, &w| b.iter(|| run_world(w, true, &eng)),
        );
        group.bench_with_input(
            BenchmarkId::new("allgather", world),
            &world,
            |b, &w| b.iter(|| run_world(w, false, &eng)),
        );
    }
    group.finish();
}

fn bench_collectives(c: &mut Criterion) {
    let mut group = c.benchmark_group("collectives_world4");
    group.sample_size(10);
    let n = 1 << 16;
    group.throughput(Throughput::Bytes((n * 4) as u64));
    group.bench_function("reduce_scatter", |b| {
        b.iter(|| {
            let g = CommGroup::new(4);
            let mut handles = Vec::new();
            for comm in g.communicators() {
                handles.push(zi_sync::thread::spawn(move || {
                    let data = vec![1.0f32; n];
                    criterion::black_box(comm.reduce_scatter_sum(&data).unwrap().len());
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
        });
    });
    group.bench_function("allreduce", |b| {
        b.iter(|| {
            let g = CommGroup::new(4);
            let mut handles = Vec::new();
            for comm in g.communicators() {
                handles.push(zi_sync::thread::spawn(move || {
                    let mut data = vec![1.0f32; n];
                    comm.allreduce_sum(&mut data).unwrap();
                    criterion::black_box(data[0]);
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
        });
    });
    group.finish();
}

criterion_group!(benches, bench_fetch_styles, bench_collectives);
criterion_main!(benches);
