//! Real-engine benchmarks: one per evaluation ablation.
//!
//! * `train_step/<strategy>` — Fig. 6a flavored: full training iteration
//!   of a tiny GPT under every Table 2 strategy.
//! * `prefetch/{on,off}` — Fig. 6d flavored: NVMe-offloaded iteration
//!   with and without the dynamic prefetcher.
//! * `tiling/<factor>` — Fig. 6b flavored: forward+backward of a large
//!   linear at different tiling factors.
//! * `act_ckpt/{on,off}` — Fig. 6e flavored: iteration with and without
//!   activation recomputation.
//! * `step_pipeline/<depth>` — Sec. 5.2.2/6.2 flavored: NVMe-streamed
//!   optimizer step at different pipeline depths over a file-backed
//!   device.

use zi_sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use zero_infinity::{Strategy, TiledLinear, ZeroEngine};
use zero_infinity::{trainer::synthetic_batch, NodeResources};
use zi_memory::NodeMemorySpec;
use zi_model::{GptConfig, GptModel, ParamRegistry, RunOptions};
use zi_nvme::{FileBackend, MemBackend, StorageBackend, ThrottledBackend};
use zi_optim::AdamConfig;
use zi_tensor::Tensor;

fn model_cfg() -> GptConfig {
    GptConfig { vocab: 32, hidden: 16, layers: 2, heads: 4, seq: 8, seed: 3 }
}

fn single_rank_engine(strategy: Strategy) -> (GptModel, ZeroEngine) {
    let spec = NodeMemorySpec::test_spec(1, 1 << 26, 1 << 27, 1 << 27);
    let node = NodeResources::in_memory(&spec, 1);
    let model = GptModel::new(model_cfg());
    let engine = ZeroEngine::new(
        model.registry(),
        strategy,
        node.offload_manager(),
        node.group.communicator(0),
        AdamConfig::default(),
    )
    .expect("engine");
    (model, engine)
}

fn bench_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("train_step");
    group.sample_size(10);
    for strategy in Strategy::table2() {
        group.bench_with_input(
            BenchmarkId::from_parameter(strategy.name),
            &strategy,
            |b, &strategy| {
                let (model, mut engine) = single_rank_engine(strategy);
                let opts = RunOptions { batch: 2, ..Default::default() };
                let (tokens, targets) = synthetic_batch(&model_cfg(), 2, 0);
                b.iter(|| {
                    let loss =
                        model.train_step(&mut engine, &tokens, &targets, &opts).unwrap();
                    engine.step().unwrap();
                    criterion::black_box(loss);
                });
            },
        );
    }
    group.finish();
}

fn bench_prefetch(c: &mut Criterion) {
    // A throttled NVMe device (500 MB/s, 200 µs latency) makes the
    // overlap benefit of the prefetcher measurable: with prefetch on, the
    // nc-transfer hides behind compute of the preceding module.
    let mut group = c.benchmark_group("prefetch");
    group.sample_size(10);
    for (label, on) in [("on", true), ("off", false)] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &on, |b, &on| {
            let spec = NodeMemorySpec::test_spec(1, 1 << 26, 1 << 27, 1 << 27);
            let backend = Arc::new(ThrottledBackend::new(
                MemBackend::new(),
                500e6,
                Duration::from_micros(200),
            )) as Arc<dyn StorageBackend>;
            let node = NodeResources::with_backend(&spec, 1, backend);
            let model = GptModel::new(model_cfg());
            let mut engine = ZeroEngine::new(
                model.registry(),
                Strategy::infinity_nvme().with_prefetch(on),
                node.offload_manager(),
                node.group.communicator(0),
                AdamConfig::default(),
            )
            .expect("engine");
            let opts =
                RunOptions { batch: 2, activation_checkpointing: false, prefetch_window: 2 };
            let (tokens, targets) = synthetic_batch(&model_cfg(), 2, 0);
            b.iter(|| {
                let loss = model.train_step(&mut engine, &tokens, &targets, &opts).unwrap();
                criterion::black_box(loss);
                engine.clear_grads();
            });
        });
    }
    group.finish();
}

fn bench_tiling(c: &mut Criterion) {
    let mut group = c.benchmark_group("tiling");
    group.sample_size(10);
    let hidden = 128;
    for tiles in [1usize, 4, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(tiles), &tiles, |b, &tiles| {
            let spec = NodeMemorySpec::test_spec(1, 1 << 26, 1 << 27, 1 << 27);
            let node = NodeResources::in_memory(&spec, 1);
            let mut reg = ParamRegistry::new();
            let tl =
                TiledLinear::register(&mut reg, "ffn", hidden, 4 * hidden, tiles, 7, 0.02)
                    .unwrap();
            let mut engine = ZeroEngine::new(
                &reg,
                Strategy::infinity_cpu(),
                node.offload_manager(),
                node.group.communicator(0),
                AdamConfig::default(),
            )
            .unwrap();
            let x = Tensor::randn_seeded(&[2, hidden], 3, 0.1);
            let dy = Tensor::randn_seeded(&[2, 4 * hidden], 4, 0.1);
            b.iter(|| {
                let y = tl.forward(&mut engine, &x).unwrap();
                let dx = tl.backward(&mut engine, &x, &dy).unwrap();
                engine.clear_grads();
                criterion::black_box((y, dx));
            });
        });
    }
    group.finish();
}

fn bench_act_ckpt(c: &mut Criterion) {
    let mut group = c.benchmark_group("act_ckpt");
    group.sample_size(10);
    for (label, on) in [("recompute", true), ("stored", false)] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &on, |b, &on| {
            let (model, mut engine) = single_rank_engine(Strategy::infinity_cpu());
            let opts =
                RunOptions { batch: 2, activation_checkpointing: on, prefetch_window: 2 };
            let (tokens, targets) = synthetic_batch(&model_cfg(), 2, 0);
            b.iter(|| {
                let loss = model.train_step(&mut engine, &tokens, &targets, &opts).unwrap();
                engine.step().unwrap();
                criterion::black_box(loss);
            });
        });
    }
    group.finish();
}

/// Prefetch-window depth sweep (DESIGN.md ablation: depth 0/1/2/3) on a
/// throttled NVMe device.
fn bench_prefetch_depth(c: &mut Criterion) {
    let mut group = c.benchmark_group("prefetch_depth");
    group.sample_size(10);
    for window in [0usize, 1, 2, 3] {
        group.bench_with_input(BenchmarkId::from_parameter(window), &window, |b, &window| {
            let spec = NodeMemorySpec::test_spec(1, 1 << 26, 1 << 27, 1 << 27);
            let backend = Arc::new(ThrottledBackend::new(
                MemBackend::new(),
                500e6,
                Duration::from_micros(200),
            )) as Arc<dyn StorageBackend>;
            let node = NodeResources::with_backend(&spec, 1, backend);
            let model = GptModel::new(model_cfg());
            let mut engine = ZeroEngine::new(
                model.registry(),
                Strategy::infinity_nvme().with_prefetch(window > 0),
                node.offload_manager(),
                node.group.communicator(0),
                AdamConfig::default(),
            )
            .expect("engine");
            let opts = RunOptions {
                batch: 2,
                activation_checkpointing: false,
                prefetch_window: window,
            };
            let (tokens, targets) = synthetic_batch(&model_cfg(), 2, 0);
            b.iter(|| {
                let loss = model.train_step(&mut engine, &tokens, &targets, &opts).unwrap();
                criterion::black_box(loss);
                engine.clear_grads();
            });
        });
    }
    group.finish();
}

/// Chunked vs monolithic NVMe optimizer step (DESIGN.md ablation): a
/// single large parameter updated through a throttled NVMe device with
/// different streaming chunk sizes.
fn bench_optimizer_chunking(c: &mut Criterion) {
    let mut group = c.benchmark_group("nvme_optimizer_step");
    group.sample_size(10);
    const NUMEL: usize = 1 << 16;
    for chunk in [1usize << 12, 1 << 14, usize::MAX] {
        let label = if chunk == usize::MAX { "monolithic".into() } else { format!("{chunk}") };
        group.bench_with_input(BenchmarkId::from_parameter(label), &chunk, |b, &chunk| {
            let spec = NodeMemorySpec::test_spec(1, 1 << 26, 1 << 27, 1 << 27);
            let backend = Arc::new(ThrottledBackend::new(
                MemBackend::new(),
                2e9,
                Duration::from_micros(100),
            )) as Arc<dyn StorageBackend>;
            let node = NodeResources::with_backend(&spec, 1, backend);
            let mut reg = ParamRegistry::new();
            let id = reg.register("big", &[NUMEL], 3, 0.1, 0.0);
            let mut engine = ZeroEngine::new(
                &reg,
                Strategy::infinity_nvme().with_optimizer_chunk(chunk),
                node.offload_manager(),
                node.group.communicator(0),
                AdamConfig::default(),
            )
            .expect("engine");
            let grad = Tensor::randn_seeded(&[NUMEL], 5, 0.1);
            b.iter(|| {
                use zi_model::ParamStore;
                engine.add_grad(id, &grad).unwrap();
                engine.step().unwrap();
            });
        });
    }
    group.finish();
}

/// Pipelined vs sequential NVMe optimizer step (DESIGN.md ablation): the
/// same chunked streaming update over a real file-backed NVMe device at
/// different `step_pipeline_depth` settings. Depth 1 is the fully
/// sequential read→update→write loop; depth ≥ 2 keeps later chunks' reads
/// and earlier chunks' write-behind in flight during the current update.
fn bench_step_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("step_pipeline");
    group.sample_size(10);
    const NUMEL: usize = 1 << 16;
    for depth in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, &depth| {
            let spec = NodeMemorySpec::test_spec(1, 1 << 26, 1 << 27, 1 << 27);
            let path = std::env::temp_dir()
                .join(format!("zi_step_pipeline_bench_{}_{depth}.dat", std::process::id()));
            // Throttle the file device to real-NVMe characteristics; a
            // tmpfs-backed file answers at RAM speed, which hides the
            // latency the pipeline exists to overlap.
            let backend = Arc::new(ThrottledBackend::new(
                FileBackend::create(&path).expect("file nvme"),
                2e9,
                Duration::from_micros(100),
            )) as Arc<dyn StorageBackend>;
            let node = NodeResources::with_backend(&spec, 1, backend);
            let mut reg = ParamRegistry::new();
            let id = reg.register("big", &[NUMEL], 3, 0.1, 0.0);
            let mut engine = ZeroEngine::new(
                &reg,
                Strategy::infinity_nvme()
                    .with_optimizer_chunk(1 << 12)
                    .with_step_pipeline_depth(depth),
                node.offload_manager(),
                node.group.communicator(0),
                AdamConfig::default(),
            )
            .expect("engine");
            let grad = Tensor::randn_seeded(&[NUMEL], 5, 0.1);
            b.iter(|| {
                use zi_model::ParamStore;
                engine.add_grad(id, &grad).unwrap();
                engine.step().unwrap();
            });
            drop(engine);
            drop(node);
            let _ = std::fs::remove_file(&path);
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_strategies,
    bench_prefetch,
    bench_prefetch_depth,
    bench_optimizer_chunking,
    bench_step_pipeline,
    bench_tiling,
    bench_act_ckpt
);
criterion_main!(benches);
