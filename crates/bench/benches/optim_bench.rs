//! Optimizer-path benchmarks (paper Sec. 5.2.2 and 6.3).
//!
//! * Chunked Adam streaming: chunk-size sweep over an NVMe-resident
//!   optimizer shard (the CPU-memory-bounded step).
//! * Pinned-buffer reuse vs per-transfer allocation (the pinned memory
//!   management layer's fragmentation-avoidance claim).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use zi_memory::PinnedBufferPool;
use zi_optim::{AdamConfig, AdamShard};

const SHARD: usize = 1 << 18; // 256k elements ≈ 3 MB of optimizer state

fn bench_chunked_adam(c: &mut Criterion) {
    let cfg = AdamConfig::default();
    let init: Vec<f32> = (0..SHARD).map(|i| (i % 97) as f32 * 0.01).collect();
    let grad: Vec<f32> = (0..SHARD).map(|i| ((i % 31) as f32 - 15.0) * 0.01).collect();

    let mut group = c.benchmark_group("adam_step");
    group.throughput(Throughput::Elements(SHARD as u64));
    group.sample_size(20);
    for chunk in [1usize << 12, 1 << 14, 1 << 16, usize::MAX] {
        let label = if chunk == usize::MAX { "monolithic".into() } else { format!("{chunk}") };
        group.bench_with_input(BenchmarkId::from_parameter(label), &chunk, |b, &chunk| {
            let mut shard = AdamShard::new(&init);
            b.iter(|| {
                shard.begin_step();
                let mut start = 0;
                while start < SHARD {
                    let len = chunk.min(SHARD - start);
                    shard.step_chunk(&cfg, start, &grad[start..start + len]);
                    start += len;
                }
            });
        });
    }
    group.finish();
}

fn bench_pinned_reuse(c: &mut Criterion) {
    const BUF: usize = 1 << 20;
    let mut group = c.benchmark_group("staging_buffers");
    group.throughput(Throughput::Bytes((BUF * 16) as u64));
    group.sample_size(20);
    group.bench_function("pooled_reuse", |b| {
        let pool = PinnedBufferPool::new(4, BUF);
        b.iter(|| {
            for i in 0..16u8 {
                let mut buf = pool.acquire();
                buf.as_mut_slice()[0] = i;
                criterion::black_box(buf.as_slice()[0]);
            }
        });
    });
    group.bench_function("fresh_alloc", |b| {
        b.iter(|| {
            for i in 0..16u8 {
                let mut buf = vec![0u8; BUF];
                buf[0] = i;
                criterion::black_box(buf[0]);
            }
        });
    });
    group.finish();
}

criterion_group!(benches, bench_chunked_adam, bench_pinned_reuse);
criterion_main!(benches);
