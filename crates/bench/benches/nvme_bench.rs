//! DeepNVMe benchmarks (paper Sec. 6.3).
//!
//! Measures the async I/O engine's sequential read/write throughput on a
//! real file as worker parallelism grows — the "aggressive
//! parallelization of I/O requests" claim — and the cost of the flush
//! barrier.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use zi_nvme::{FileBackend, NvmeEngine, StorageBackend};

const BLOCK: usize = 256 * 1024;
const BLOCKS: usize = 32;

fn engine(workers: usize, dir: &std::path::Path) -> NvmeEngine {
    let backend =
        Arc::new(FileBackend::create(&dir.join(format!("bench_{workers}.dev"))).unwrap());
    NvmeEngine::new(backend as Arc<dyn StorageBackend>, workers)
}

fn bench_write_throughput(c: &mut Criterion) {
    let dir = std::env::temp_dir().join(format!("zi_nvme_bench_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let mut group = c.benchmark_group("nvme_write");
    group.throughput(Throughput::Bytes((BLOCK * BLOCKS) as u64));
    group.sample_size(10);
    for workers in [1usize, 2, 4, 8] {
        let eng = engine(workers, &dir);
        group.bench_with_input(BenchmarkId::from_parameter(workers), &workers, |b, _| {
            b.iter(|| {
                for i in 0..BLOCKS {
                    eng.submit_write((i * BLOCK) as u64, vec![i as u8; BLOCK]);
                }
                eng.flush().unwrap();
            });
        });
    }
    group.finish();
    std::fs::remove_dir_all(&dir).ok();
}

fn bench_read_throughput(c: &mut Criterion) {
    let dir = std::env::temp_dir().join(format!("zi_nvme_benchr_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let mut group = c.benchmark_group("nvme_read");
    group.throughput(Throughput::Bytes((BLOCK * BLOCKS) as u64));
    group.sample_size(10);
    for workers in [1usize, 4, 8] {
        let eng = engine(workers, &dir);
        for i in 0..BLOCKS {
            eng.submit_write((i * BLOCK) as u64, vec![i as u8; BLOCK]);
        }
        eng.flush().unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(workers), &workers, |b, _| {
            b.iter(|| {
                let reqs: Vec<(u64, usize)> =
                    (0..BLOCKS).map(|i| ((i * BLOCK) as u64, BLOCK)).collect();
                let tickets = eng.submit_read_bulk(&reqs);
                for t in tickets {
                    let buf = eng.wait(t).unwrap().unwrap();
                    criterion::black_box(buf);
                }
            });
        });
    }
    group.finish();
    std::fs::remove_dir_all(&dir).ok();
}

/// Bulk submission (async, overlapped) vs one-at-a-time synchronous
/// round trips: the asynchrony claim.
fn bench_bulk_vs_serial(c: &mut Criterion) {
    let dir = std::env::temp_dir().join(format!("zi_nvme_benchs_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let eng = engine(4, &dir);
    for i in 0..BLOCKS {
        eng.submit_write((i * BLOCK) as u64, vec![7u8; BLOCK]);
    }
    eng.flush().unwrap();

    let mut group = c.benchmark_group("nvme_submit_style");
    group.throughput(Throughput::Bytes((BLOCK * BLOCKS) as u64));
    group.sample_size(10);
    group.bench_function("bulk_async", |b| {
        b.iter(|| {
            let reqs: Vec<(u64, usize)> =
                (0..BLOCKS).map(|i| ((i * BLOCK) as u64, BLOCK)).collect();
            for t in eng.submit_read_bulk(&reqs) {
                criterion::black_box(eng.wait(t).unwrap());
            }
        });
    });
    group.bench_function("serial_sync", |b| {
        b.iter(|| {
            for i in 0..BLOCKS {
                let t = eng.submit_read((i * BLOCK) as u64, BLOCK);
                criterion::black_box(eng.wait(t).unwrap());
            }
        });
    });
    group.finish();
    std::fs::remove_dir_all(&dir).ok();
}

criterion_group!(benches, bench_write_throughput, bench_read_throughput, bench_bulk_vs_serial);
criterion_main!(benches);
