//! DeepNVMe benchmarks (paper Sec. 6.3).
//!
//! Measures the async I/O engine's sequential read/write throughput on a
//! real file as worker parallelism grows — the "aggressive
//! parallelization of I/O requests" claim — and the cost of the flush
//! barrier.

use zi_sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use zi_nvme::{FileBackend, NvmeEngine, StorageBackend};

const BLOCK: usize = 256 * 1024;
const BLOCKS: usize = 32;

fn engine(workers: usize, dir: &std::path::Path) -> NvmeEngine {
    let backend =
        Arc::new(FileBackend::create(&dir.join(format!("bench_{workers}.dev"))).unwrap());
    NvmeEngine::new(backend as Arc<dyn StorageBackend>, workers)
}

fn bench_write_throughput(c: &mut Criterion) {
    let dir = std::env::temp_dir().join(format!("zi_nvme_bench_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let mut group = c.benchmark_group("nvme_write");
    group.throughput(Throughput::Bytes((BLOCK * BLOCKS) as u64));
    group.sample_size(10);
    for workers in [1usize, 2, 4, 8] {
        let eng = engine(workers, &dir);
        group.bench_with_input(BenchmarkId::from_parameter(workers), &workers, |b, _| {
            b.iter(|| {
                for i in 0..BLOCKS {
                    eng.submit_write((i * BLOCK) as u64, vec![i as u8; BLOCK]);
                }
                eng.flush().unwrap();
            });
        });
    }
    group.finish();
    std::fs::remove_dir_all(&dir).ok();
}

fn bench_read_throughput(c: &mut Criterion) {
    let dir = std::env::temp_dir().join(format!("zi_nvme_benchr_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let mut group = c.benchmark_group("nvme_read");
    group.throughput(Throughput::Bytes((BLOCK * BLOCKS) as u64));
    group.sample_size(10);
    for workers in [1usize, 4, 8] {
        let eng = engine(workers, &dir);
        for i in 0..BLOCKS {
            eng.submit_write((i * BLOCK) as u64, vec![i as u8; BLOCK]);
        }
        eng.flush().unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(workers), &workers, |b, _| {
            b.iter(|| {
                let reqs: Vec<(u64, usize)> =
                    (0..BLOCKS).map(|i| ((i * BLOCK) as u64, BLOCK)).collect();
                let tickets = eng.submit_read_bulk(&reqs);
                for t in tickets {
                    let buf = eng.wait(t).unwrap().unwrap();
                    criterion::black_box(buf);
                }
            });
        });
    }
    group.finish();
    std::fs::remove_dir_all(&dir).ok();
}

/// Bulk submission (async, overlapped) vs one-at-a-time synchronous
/// round trips: the asynchrony claim.
fn bench_bulk_vs_serial(c: &mut Criterion) {
    let dir = std::env::temp_dir().join(format!("zi_nvme_benchs_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let eng = engine(4, &dir);
    for i in 0..BLOCKS {
        eng.submit_write((i * BLOCK) as u64, vec![7u8; BLOCK]);
    }
    eng.flush().unwrap();

    let mut group = c.benchmark_group("nvme_submit_style");
    group.throughput(Throughput::Bytes((BLOCK * BLOCKS) as u64));
    group.sample_size(10);
    group.bench_function("bulk_async", |b| {
        b.iter(|| {
            let reqs: Vec<(u64, usize)> =
                (0..BLOCKS).map(|i| ((i * BLOCK) as u64, BLOCK)).collect();
            for t in eng.submit_read_bulk(&reqs) {
                criterion::black_box(eng.wait(t).unwrap());
            }
        });
    });
    group.bench_function("serial_sync", |b| {
        b.iter(|| {
            for i in 0..BLOCKS {
                let t = eng.submit_read((i * BLOCK) as u64, BLOCK);
                criterion::black_box(eng.wait(t).unwrap());
            }
        });
    });
    group.finish();
    std::fs::remove_dir_all(&dir).ok();
}

/// Fault-free overhead of the resilience layer (guard for the <5%
/// budget): the retry wrapper around every engine request, and the
/// CRC32 verify the offload path adds to each shard load, measured
/// against the raw engine read and a plain memcpy of the same bytes.
fn bench_resilience_overhead(c: &mut Criterion) {
    use zi_nvme::{checksum::crc32, MemBackend, RetryPolicy};

    let mem_engine = |policy: RetryPolicy| {
        let backend = Arc::new(MemBackend::new());
        let eng = NvmeEngine::with_policy(backend as Arc<dyn StorageBackend>, 4, policy);
        for i in 0..BLOCKS {
            eng.submit_write((i * BLOCK) as u64, vec![i as u8; BLOCK]);
        }
        eng.flush().unwrap();
        eng
    };
    let read_all = |eng: &NvmeEngine| {
        let reqs: Vec<(u64, usize)> =
            (0..BLOCKS).map(|i| ((i * BLOCK) as u64, BLOCK)).collect();
        for t in eng.submit_read_bulk(&reqs) {
            criterion::black_box(eng.wait(t).unwrap());
        }
    };

    let mut group = c.benchmark_group("resilience_read_overhead");
    group.throughput(Throughput::Bytes((BLOCK * BLOCKS) as u64));
    group.sample_size(20);
    // Baseline: the engine with the retry machinery disabled.
    let raw = mem_engine(RetryPolicy::none());
    group.bench_function("engine_no_retry", |b| b.iter(|| read_all(&raw)));
    // The same reads through the default retry policy — fault-free, so
    // the only cost is the per-request policy wrapper and accounting.
    let wrapped = mem_engine(RetryPolicy::default());
    group.bench_function("engine_retry_wrapped", |b| b.iter(|| read_all(&wrapped)));
    group.finish();

    // Checksum verify amortized against the memcpy each load already
    // pays: crc32 of a block vs copying the block.
    let block = vec![0x5au8; BLOCK];
    let mut group = c.benchmark_group("resilience_checksum");
    group.throughput(Throughput::Bytes(BLOCK as u64));
    group.sample_size(20);
    group.bench_function("crc32_verify", |b| {
        b.iter(|| criterion::black_box(crc32(criterion::black_box(&block))))
    });
    group.bench_function("memcpy_baseline", |b| {
        b.iter(|| criterion::black_box(block.clone()))
    });
    group.finish();

    // The guard itself: on a device-bound read path (backend throttled
    // to NVMe-class bandwidth), verifying each completed block on the
    // caller thread overlaps with the workers' in-flight reads — the
    // shape of the offload manager's verified loads — so the wall-clock
    // cost of verification must stay under 5%.
    use zi_nvme::ThrottledBackend;
    let throttled = {
        let backend = MemBackend::new();
        for i in 0..BLOCKS {
            backend.write_at((i * BLOCK) as u64, &vec![i as u8; BLOCK]).unwrap();
        }
        let backend = Arc::new(ThrottledBackend::new(
            backend,
            2.0 * (1u64 << 30) as f64, // 2 GiB/s: a mid-range NVMe SSD
            std::time::Duration::from_micros(20),
        ));
        NvmeEngine::with_policy(
            backend as Arc<dyn StorageBackend>,
            2,
            RetryPolicy::default(),
        )
    };
    let mut group = c.benchmark_group("resilience_pipelined_verify");
    group.throughput(Throughput::Bytes((BLOCK * BLOCKS) as u64));
    group.sample_size(10);
    group.bench_function("read_only", |b| {
        b.iter(|| {
            let reqs: Vec<(u64, usize)> =
                (0..BLOCKS).map(|i| ((i * BLOCK) as u64, BLOCK)).collect();
            for t in throttled.submit_read_bulk(&reqs) {
                criterion::black_box(throttled.wait(t).unwrap());
            }
        });
    });
    group.bench_function("read_and_verify", |b| {
        b.iter(|| {
            let reqs: Vec<(u64, usize)> =
                (0..BLOCKS).map(|i| ((i * BLOCK) as u64, BLOCK)).collect();
            for t in throttled.submit_read_bulk(&reqs) {
                let buf = throttled.wait(t).unwrap().unwrap();
                criterion::black_box(crc32(&buf));
            }
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_write_throughput,
    bench_read_throughput,
    bench_bulk_vs_serial,
    bench_resilience_overhead
);
criterion_main!(benches);
