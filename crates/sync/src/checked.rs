//! Instrumented primitives for `cfg(zi_check)` builds. Each type keeps a
//! real primitive inside (uncontended while the model serializes
//! execution) plus a [`zi_check::rt::ObjCell`] registering it with the
//! active model run. Outside a run every operation degrades to the real
//! primitive, so ordinary tests still work in `zi_check` builds.
//!
//! Ordering discipline everywhere: perform the *model* side first for
//! acquisitions (the scheduler decides who may proceed, then the real
//! lock is taken while provably free) and the *real* side first for
//! releases (drop the real guard, then tell the model — so a thread the
//! model wakes next never blocks on a real lock still held by a parked
//! thread).

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::time::Duration;

use zi_check::rt;

// ---------------------------------------------------------------------------
// Mutex / Condvar

/// Mutual exclusion (instrumented; see module docs for the contract).
pub struct Mutex<T: ?Sized> {
    cell: rt::ObjCell,
    inner: parking_lot::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    lock: &'a Mutex<T>,
    model: Option<rt::ObjId>,
    inner: Option<parking_lot::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Create a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex { cell: rt::ObjCell::new(), inner: parking_lot::Mutex::new(value) }
    }

    /// Consume the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the mutex, blocking (in model time) until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let model = rt::mutex_lock(&self.cell);
        MutexGuard { lock: self, model, inner: Some(self.inner.lock()) }
    }

    /// Try to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match rt::mutex_try_lock(&self.cell) {
            None => self
                .inner
                .try_lock()
                .map(|g| MutexGuard { lock: self, model: None, inner: Some(g) }),
            Some((id, true)) => {
                Some(MutexGuard { lock: self, model: Some(id), inner: Some(self.inner.lock()) })
            }
            Some((_, false)) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        self.inner = None; // real unlock first (see module docs)
        if let Some(id) = self.model.take() {
            rt::mutex_unlock(id);
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

/// Condition variable compatible with [`Mutex`] (instrumented).
pub struct Condvar {
    cell: rt::ObjCell,
    inner: parking_lot::Condvar,
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Condvar { cell: rt::ObjCell::new(), inner: parking_lot::Condvar::new() }
    }

    /// Block until notified, releasing `guard` while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        match guard.model {
            Some(m) => {
                guard.inner = None; // release the real lock for the wait
                let _ = rt::cond_wait(&self.cell, m, None);
                guard.inner = Some(guard.lock.inner.lock());
            }
            None => {
                let mut inner = guard.inner.take().expect("guard present");
                self.inner.wait(&mut inner);
                guard.inner = Some(inner);
            }
        }
    }

    /// Block until notified or `timeout` elapses (virtual time under the
    /// model). Returns `true` if it timed out.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> bool {
        match guard.model {
            Some(m) => {
                guard.inner = None;
                let timed_out = rt::cond_wait(&self.cell, m, Some(timeout));
                guard.inner = Some(guard.lock.inner.lock());
                timed_out
            }
            None => {
                let mut inner = guard.inner.take().expect("guard present");
                let timed_out = self.inner.wait_for(&mut inner, timeout);
                guard.inner = Some(inner);
                timed_out
            }
        }
    }

    /// Wake one waiter (which one is an exploration decision under the
    /// model).
    pub fn notify_one(&self) {
        rt::cond_notify(&self.cell, false);
        self.inner.notify_one();
    }

    /// Wake every waiter.
    pub fn notify_all(&self) {
        rt::cond_notify(&self.cell, true);
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

// ---------------------------------------------------------------------------
// RwLock

/// Reader-writer lock (instrumented).
pub struct RwLock<T: ?Sized> {
    cell: rt::ObjCell,
    inner: parking_lot::RwLock<T>,
}

/// Shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    model: Option<rt::ObjId>,
    inner: Option<parking_lot::RwLockReadGuard<'a, T>>,
}

/// Exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    model: Option<rt::ObjId>,
    inner: Option<parking_lot::RwLockWriteGuard<'a, T>>,
}

impl<T> RwLock<T> {
    /// Create an rwlock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock { cell: rt::ObjCell::new(), inner: parking_lot::RwLock::new(value) }
    }

    /// Consume the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let model = rt::rw_lock(&self.cell, false);
        RwLockReadGuard { model, inner: Some(self.inner.read()) }
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let model = rt::rw_lock(&self.cell, true);
        RwLockWriteGuard { model, inner: Some(self.inner.write()) }
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        self.inner = None;
        if let Some(id) = self.model.take() {
            rt::rw_unlock(id, false);
        }
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        self.inner = None;
        if let Some(id) = self.model.take() {
            rt::rw_unlock(id, true);
        }
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("RwLock { .. }")
    }
}

// ---------------------------------------------------------------------------
// Atomics

/// Atomic types whose release/acquire edges feed the happens-before
/// model (values live in real `std` atomics).
pub mod atomic {
    pub use std::sync::atomic::Ordering;
    use std::sync::atomic::{self as std_atomic};

    use zi_check::rt::{self, Acc};

    fn load_acc(o: Ordering) -> Acc {
        match o {
            Ordering::Relaxed => Acc::LoadRlx,
            _ => Acc::LoadAcq,
        }
    }

    fn store_acc(o: Ordering) -> Acc {
        match o {
            Ordering::Relaxed => Acc::StoreRlx,
            _ => Acc::StoreRel,
        }
    }

    fn rmw_acc(o: Ordering) -> Acc {
        match o {
            Ordering::Relaxed => Acc::RmwRlx,
            _ => Acc::RmwAcqRel,
        }
    }

    macro_rules! atomic_common {
        ($name:ident, $std:ident, $ty:ty) => {
            /// Instrumented counterpart of the `std` atomic of the same
            /// name; see the `zi-sync` crate docs for the contract.
            pub struct $name {
                cell: rt::ObjCell,
                inner: std_atomic::$std,
            }

            impl $name {
                /// Create a new atomic with the given initial value.
                pub const fn new(v: $ty) -> Self {
                    $name { cell: rt::ObjCell::new(), inner: std_atomic::$std::new(v) }
                }

                /// Atomic load.
                pub fn load(&self, o: Ordering) -> $ty {
                    rt::atomic_access(&self.cell, load_acc(o));
                    self.inner.load(o)
                }

                /// Atomic store.
                pub fn store(&self, v: $ty, o: Ordering) {
                    rt::atomic_access(&self.cell, store_acc(o));
                    self.inner.store(v, o)
                }

                /// Atomic swap.
                pub fn swap(&self, v: $ty, o: Ordering) -> $ty {
                    rt::atomic_access(&self.cell, rmw_acc(o));
                    self.inner.swap(v, o)
                }

                /// Atomic compare-exchange. The model conservatively
                /// treats both outcomes as an RMW at `success` strength.
                pub fn compare_exchange(
                    &self,
                    cur: $ty,
                    new: $ty,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$ty, $ty> {
                    rt::atomic_access(&self.cell, rmw_acc(success));
                    self.inner.compare_exchange(cur, new, success, failure)
                }

                /// Mutable access without atomics (exclusive borrow).
                pub fn get_mut(&mut self) -> &mut $ty {
                    self.inner.get_mut()
                }

                /// Consume, returning the value.
                pub fn into_inner(self) -> $ty {
                    self.inner.into_inner()
                }
            }

            impl std::fmt::Debug for $name {
                fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                    self.inner.fmt(f)
                }
            }

            impl Default for $name {
                fn default() -> Self {
                    Self::new(<$ty>::default())
                }
            }
        };
    }

    macro_rules! atomic_int_ops {
        ($name:ident, $ty:ty) => {
            impl $name {
                /// Atomic add; returns the previous value.
                pub fn fetch_add(&self, v: $ty, o: Ordering) -> $ty {
                    rt::atomic_access(&self.cell, rmw_acc(o));
                    self.inner.fetch_add(v, o)
                }

                /// Atomic subtract; returns the previous value.
                pub fn fetch_sub(&self, v: $ty, o: Ordering) -> $ty {
                    rt::atomic_access(&self.cell, rmw_acc(o));
                    self.inner.fetch_sub(v, o)
                }

                /// Atomic max; returns the previous value.
                pub fn fetch_max(&self, v: $ty, o: Ordering) -> $ty {
                    rt::atomic_access(&self.cell, rmw_acc(o));
                    self.inner.fetch_max(v, o)
                }
            }
        };
    }

    atomic_common!(AtomicBool, AtomicBool, bool);
    atomic_common!(AtomicU8, AtomicU8, u8);
    atomic_common!(AtomicU32, AtomicU32, u32);
    atomic_common!(AtomicU64, AtomicU64, u64);
    atomic_common!(AtomicUsize, AtomicUsize, usize);
    atomic_int_ops!(AtomicU32, u32);
    atomic_int_ops!(AtomicU64, u64);
    atomic_int_ops!(AtomicUsize, usize);

    impl AtomicBool {
        /// Atomic or; returns the previous value.
        pub fn fetch_or(&self, v: bool, o: Ordering) -> bool {
            rt::atomic_access(&self.cell, rmw_acc(o));
            self.inner.fetch_or(v, o)
        }
    }
}

// ---------------------------------------------------------------------------
// Channels

/// MPMC channels whose send/receive/disconnect transitions are scheduled
/// and happens-before-tracked by the model.
pub mod channel {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    pub use crossbeam::channel::{RecvError, SendError, TryRecvError};

    use zi_check::rt::{self, RecvOutcome, TryRecvOutcome};

    struct Meta {
        cell: rt::ObjCell,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    impl Meta {
        fn counts(&self) -> (usize, usize) {
            (self.senders.load(Ordering::Relaxed), self.receivers.load(Ordering::Relaxed))
        }
    }

    /// Sending half of a channel. Cloneable.
    pub struct Sender<T> {
        inner: crossbeam::channel::Sender<T>,
        meta: Arc<Meta>,
    }

    /// Receiving half of a channel. Cloneable (MPMC).
    pub struct Receiver<T> {
        inner: crossbeam::channel::Receiver<T>,
        meta: Arc<Meta>,
    }

    /// Channel with unlimited buffering. (The model enforces no bound;
    /// logically bounded flows in the workspace use condvar windows.)
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = crossbeam::channel::unbounded();
        let meta = Arc::new(Meta {
            cell: rt::ObjCell::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (Sender { inner: tx, meta: Arc::clone(&meta) }, Receiver { inner: rx, meta })
    }

    /// Channel with a capacity hint. Under the model the capacity is
    /// *not* enforced: a real `crossbeam::bounded` send would block the
    /// serialized scheduler thread for actual wall time when full, so
    /// checked builds back `bounded` with an unbounded queue and let the
    /// model explore send/recv interleavings only. Back-pressure paths
    /// that must be explored should use condvar windows instead.
    pub fn bounded<T>(_cap: usize) -> (Sender<T>, Receiver<T>) {
        unbounded()
    }

    impl<T> Sender<T> {
        /// Send `value`; errs when every receiver has disconnected.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let (s, r) = self.meta.counts();
            match rt::chan_send(&self.meta.cell, s, r, 0, None) {
                None | Some(true) => self.inner.send(value),
                Some(false) => Err(SendError(value)),
            }
        }
    }

    impl<T> Receiver<T> {
        /// Receive the next value, blocking (in model time) until one
        /// arrives or every sender disconnects.
        pub fn recv(&self) -> Result<T, RecvError> {
            let (s, r) = self.meta.counts();
            match rt::chan_recv(&self.meta.cell, s, r, 0, None) {
                None => self.inner.recv(),
                Some(RecvOutcome::Data) => {
                    // The model granted Data, so the real queue is
                    // non-empty (sends are applied eagerly).
                    self.inner.try_recv().map_err(|_| RecvError)
                }
                Some(RecvOutcome::Disconnected) => Err(RecvError),
            }
        }

        /// Receive without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let (s, r) = self.meta.counts();
            match rt::chan_try_recv(&self.meta.cell, s, r, 0, None) {
                None => self.inner.try_recv(),
                Some(TryRecvOutcome::Data) => {
                    self.inner.try_recv().map_err(|_| TryRecvError::Disconnected)
                }
                Some(TryRecvOutcome::Empty) => Err(TryRecvError::Empty),
                Some(TryRecvOutcome::Disconnected) => Err(TryRecvError::Disconnected),
            }
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.meta.senders.fetch_add(1, Ordering::Relaxed);
            rt::chan_update_peers(&self.meta.cell, 1, 0);
            Sender { inner: self.inner.clone(), meta: Arc::clone(&self.meta) }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.meta.receivers.fetch_add(1, Ordering::Relaxed);
            rt::chan_update_peers(&self.meta.cell, 0, 1);
            Receiver { inner: self.inner.clone(), meta: Arc::clone(&self.meta) }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            self.meta.senders.fetch_sub(1, Ordering::Relaxed);
            rt::chan_update_peers(&self.meta.cell, -1, 0);
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.meta.receivers.fetch_sub(1, Ordering::Relaxed);
            rt::chan_update_peers(&self.meta.cell, 0, -1);
        }
    }
}

// ---------------------------------------------------------------------------
// Threads

/// Thread spawning that registers children with the model scheduler.
pub mod thread {
    use std::io;
    use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
    use std::time::Duration;

    use zi_check::rt;

    /// Rendering of a thread's outcome (same shape as `std`).
    pub type Result<T> = std::thread::Result<T>;

    /// Configurable thread factory mirroring `std::thread::Builder`.
    #[derive(Debug, Default)]
    pub struct Builder {
        name: Option<String>,
    }

    impl Builder {
        /// New builder with defaults.
        pub fn new() -> Self {
            Builder { name: None }
        }

        /// Name the thread (also used in model-checker reports).
        pub fn name(mut self, name: String) -> Self {
            self.name = Some(name);
            self
        }

        /// Spawn the thread, registering it with the active model run.
        pub fn spawn<F, T>(self, f: F) -> io::Result<JoinHandle<T>>
        where
            F: FnOnce() -> T + Send + 'static,
            T: Send + 'static,
        {
            let name = self.name.unwrap_or_else(|| "zi-thread".to_string());
            let b = std::thread::Builder::new().name(name.clone());
            match rt::spawn_begin(&name) {
                None => b.spawn(f).map(|h| JoinHandle { inner: h, model: None }),
                Some(tok) => {
                    let model = tok.tid();
                    let h = b.spawn(move || {
                        rt::spawn_attach(tok);
                        let out = catch_unwind(AssertUnwindSafe(f));
                        match &out {
                            Ok(_) => rt::thread_finish(rt::FinishKind::Ok),
                            Err(p) if p.is::<rt::AbortToken>() => {
                                rt::thread_finish(rt::FinishKind::Abort)
                            }
                            Err(p) => rt::thread_finish(rt::FinishKind::Panic(
                                super::panic_text(p.as_ref()),
                            )),
                        }
                        match out {
                            Ok(v) => v,
                            Err(p) => resume_unwind(p),
                        }
                    })?;
                    Ok(JoinHandle { inner: h, model: Some(model) })
                }
            }
        }
    }

    /// Join handle mirroring `std::thread::JoinHandle`.
    pub struct JoinHandle<T> {
        inner: std::thread::JoinHandle<T>,
        model: Option<usize>,
    }

    impl<T> JoinHandle<T> {
        /// Wait (in model time) for the thread to finish.
        pub fn join(self) -> Result<T> {
            if let Some(tid) = self.model {
                rt::join(tid);
            }
            self.inner.join()
        }

        /// Whether the thread has finished (passthrough to `std`).
        pub fn is_finished(&self) -> bool {
            self.inner.is_finished()
        }
    }

    /// Spawn an unnamed thread.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        Builder::new().spawn(f).expect("spawn thread")
    }

    /// Sleep in virtual time under the model, real time otherwise.
    pub fn sleep(d: Duration) {
        if !rt::sleep(d) {
            std::thread::sleep(d);
        }
    }

    /// Yield the scheduler slot.
    pub fn yield_now() {
        if !rt::yield_now() {
            std::thread::yield_now();
        }
    }

    /// Hardware parallelism (passthrough: a model run serializes
    /// execution regardless, so the real value is harmless).
    pub use std::thread::available_parallelism;
}

/// Monotonic time that reads the model's virtual clock inside a run.
pub mod time {
    use std::time::Duration;

    use zi_check::rt;

    /// Monotonic instant: virtual nanoseconds inside a model run, a real
    /// `std::time::Instant` outside one. The two kinds never mix within
    /// one context (a model run starts its own clock at zero).
    #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
    pub enum Instant {
        /// Virtual-clock reading (model runs).
        Virtual(u64),
        /// Real-clock reading (everything else).
        Real(std::time::Instant),
    }

    impl Instant {
        /// The current instant.
        pub fn now() -> Self {
            match rt::now_ns() {
                Some(ns) => Instant::Virtual(ns),
                None => Instant::Real(std::time::Instant::now()),
            }
        }

        /// Time elapsed since this instant.
        pub fn elapsed(&self) -> Duration {
            Instant::now().saturating_duration_since(*self)
        }

        /// Saturating difference between two instants.
        pub fn saturating_duration_since(&self, earlier: Instant) -> Duration {
            match (self, earlier) {
                (Instant::Virtual(a), Instant::Virtual(b)) => {
                    Duration::from_nanos(a.saturating_sub(b))
                }
                (Instant::Real(a), Instant::Real(b)) => a.saturating_duration_since(b),
                // Mixed comparisons only happen when an instant crosses a
                // model-run boundary; treat as "no time elapsed".
                _ => Duration::ZERO,
            }
        }
    }

    impl std::ops::Add<Duration> for Instant {
        type Output = Instant;
        fn add(self, d: Duration) -> Instant {
            match self {
                Instant::Virtual(ns) => {
                    Instant::Virtual(ns.saturating_add(d.as_nanos() as u64))
                }
                Instant::Real(i) => Instant::Real(i + d),
            }
        }
    }

    impl std::ops::Sub<Instant> for Instant {
        type Output = Duration;
        fn sub(self, other: Instant) -> Duration {
            self.saturating_duration_since(other)
        }
    }
}

pub(crate) fn panic_text(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}
