#![warn(missing_docs)]

//! `zi-sync`: the workspace's synchronization layer.
//!
//! Every concurrency-bearing crate (`zi-comm`, `zi-nvme`, `zi-memory`,
//! `zero-infinity`) takes its `Mutex`/`Condvar`/`RwLock`, atomics,
//! channels, threads, and monotonic clock from here instead of
//! `std`/`parking_lot`/`crossbeam` directly. The contract:
//!
//! * **Normal builds** — pure re-exports, zero cost. `Mutex` *is*
//!   `parking_lot::Mutex`, `atomic::AtomicU64` *is* the `std` atomic,
//!   `time::Instant` *is* `std::time::Instant`.
//! * **`RUSTFLAGS="--cfg zi_check"` builds** — every operation is also
//!   reported to the `zi-check` deterministic scheduler, which controls
//!   interleaving, tracks happens-before vector clocks, and detects
//!   deadlocks/lost wakeups/data races. Real primitives are still held
//!   underneath (uncontended, because the model serializes execution),
//!   so memory safety never depends on the model being right.
//!
//! Outside an active model run (e.g. ordinary unit tests in a
//! `zi_check` build), the instrumented types transparently fall back to
//! the real primitive behaviour.

// Scheduling-neutral `std` re-exports, identical in both builds. They
// live here so the sync-hygiene wall (`zi-audit`'s rule 1) stays a
// single statement — "no `std::sync` outside `crates/sync`" — instead
// of a carve-out list: `Arc`/`Weak` are reference counts (no blocking,
// no ordering the model checker could explore) and `OnceLock` is
// init-once process-global state (used for dispatch tables and lazy
// CRC tables; first-use races are benign by construction).
pub use std::sync::{Arc, OnceLock, Weak};

#[cfg(not(zi_check))]
mod passthrough {
    pub use parking_lot::{
        Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard,
    };

    /// Atomic types (plain `std` re-exports in passthrough builds).
    pub mod atomic {
        pub use std::sync::atomic::{
            AtomicBool, AtomicU32, AtomicU64, AtomicU8, AtomicUsize, Ordering,
        };
    }

    /// MPMC channels (vendored `crossbeam` re-exports in passthrough builds).
    pub mod channel {
        pub use crossbeam::channel::{
            bounded, unbounded, Receiver, RecvError, SendError, Sender, TryRecvError,
        };
    }

    /// Thread spawning and sleeping (plain `std` re-exports).
    pub mod thread {
        pub use std::thread::{
            available_parallelism, sleep, spawn, yield_now, Builder, JoinHandle, Result,
        };
    }

    /// Monotonic time (plain `std` re-export).
    pub mod time {
        pub use std::time::Instant;
    }
}
#[cfg(not(zi_check))]
pub use passthrough::*;

#[cfg(zi_check)]
mod checked;
#[cfg(zi_check)]
pub use checked::*;

/// A deliberately *unordered* shared cell for the race detector.
///
/// `RaceCell` is `Sync` and hands out copies of its value with **no
/// happens-before edge between accesses** as far as the model checker is
/// concerned: two threads touching the same `RaceCell` (at least one
/// writing) without other synchronization between them is reported as a
/// data race under `cfg(zi_check)`. Physically the value sits behind an
/// uninstrumented lock, so the type is memory-safe in every build; it
/// models the *discipline* of a plain shared field, not its UB.
///
/// Use it for state whose safety argument is "the surrounding protocol
/// orders these accesses" — the checker then verifies that argument.
pub struct RaceCell<T> {
    #[cfg(zi_check)]
    cell: zi_check::rt::ObjCell,
    value: parking_lot::Mutex<T>,
}

impl<T: Copy> RaceCell<T> {
    /// Create a cell holding `value`.
    pub const fn new(value: T) -> Self {
        RaceCell {
            #[cfg(zi_check)]
            cell: zi_check::rt::ObjCell::new(),
            value: parking_lot::Mutex::new(value),
        }
    }

    /// Read the value (a modeled unsynchronized read).
    pub fn get(&self) -> T {
        #[cfg(zi_check)]
        zi_check::rt::cell_access(&self.cell, false);
        *self.value.lock()
    }

    /// Overwrite the value (a modeled unsynchronized write).
    pub fn set(&self, value: T) {
        #[cfg(zi_check)]
        zi_check::rt::cell_access(&self.cell, true);
        *self.value.lock() = value;
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for RaceCell<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("RaceCell").field(&*self.value.lock()).finish()
    }
}
