//! Cluster hardware descriptions (paper Fig. 2b).

/// Hardware characteristics of a GPU cluster, per the paper's DGX-2
/// SuperPOD numbers (Fig. 2b and Sec. 4.2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterSpec {
    /// Number of nodes.
    pub nodes: u64,
    /// GPUs per node.
    pub gpus_per_node: u64,
    /// HBM per GPU, bytes.
    pub gpu_mem: u64,
    /// CPU DRAM per node, bytes.
    pub cpu_mem: u64,
    /// NVMe per node, bytes.
    pub nvme: u64,
    /// Achievable peak per GPU, flops/s (70 TF for V100, Sec. 4.2).
    pub gpu_peak: f64,
    /// Per-GPU GPU↔GPU collective bandwidth, bytes/s (~70 GB/s usable).
    pub gg_bw: f64,
    /// Per-GPU CPU-memory bandwidth when all GPUs read in parallel,
    /// bytes/s (3 GB/s on DGX-2, Fig. 2b).
    pub cpu_bw_per_gpu: f64,
    /// Per-GPU NVMe bandwidth when all GPUs read in parallel, bytes/s
    /// (1.6 GB/s on DGX-2, Fig. 2b).
    pub nvme_bw_per_gpu: f64,
    /// Single PCIe link bandwidth, bytes/s (12 GB/s) — what a
    /// broadcast-based fetch or single-link offload is limited to.
    pub pcie_single: f64,
}

impl ClusterSpec {
    /// A DGX-2 SuperPOD slice of `nodes` nodes.
    pub fn dgx2(nodes: u64) -> Self {
        ClusterSpec {
            nodes,
            gpus_per_node: 16,
            gpu_mem: 32 << 30,
            cpu_mem: 1536 << 30,
            nvme: 28 * (1 << 40),
            gpu_peak: 70e12,
            gg_bw: 70e9,
            cpu_bw_per_gpu: 3e9,
            nvme_bw_per_gpu: 1.6e9,
            pcie_single: 12e9,
        }
    }

    /// Total GPUs.
    pub fn total_gpus(&self) -> u64 {
        self.nodes * self.gpus_per_node
    }

    /// Aggregate GPU memory, bytes.
    pub fn total_gpu_mem(&self) -> u64 {
        self.total_gpus() * self.gpu_mem
    }

    /// Aggregate CPU memory, bytes.
    pub fn total_cpu_mem(&self) -> u64 {
        self.nodes * self.cpu_mem
    }

    /// Aggregate NVMe, bytes.
    pub fn total_nvme(&self) -> u64 {
        self.nodes * self.nvme
    }
}

/// One row of the Fig. 2b table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig2bRow {
    /// Nodes in this configuration.
    pub nodes: u64,
    /// Total GPUs.
    pub gpus: u64,
    /// Aggregate GPU memory, TB.
    pub gpu_tb: f64,
    /// Aggregate CPU memory, TB.
    pub cpu_tb: f64,
    /// Aggregate NVMe, TB.
    pub nvme_tb: f64,
    /// Per-GPU CPU bandwidth, GB/s.
    pub cpu_bw_gbps: f64,
    /// Per-GPU NVMe bandwidth, GB/s.
    pub nvme_bw_gbps: f64,
}

/// Reproduce the Fig. 2b cluster table.
pub fn fig2b_rows() -> Vec<Fig2bRow> {
    [1u64, 4, 16, 64, 96]
        .iter()
        .map(|&nodes| {
            let c = ClusterSpec::dgx2(nodes);
            Fig2bRow {
                nodes,
                gpus: c.total_gpus(),
                gpu_tb: c.total_gpu_mem() as f64 / 1e12,
                cpu_tb: c.total_cpu_mem() as f64 / 1e12,
                nvme_tb: c.total_nvme() as f64 / 1e12,
                cpu_bw_gbps: c.cpu_bw_per_gpu / 1e9,
                nvme_bw_gbps: c.nvme_bw_per_gpu / 1e9,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dgx2_matches_fig2b() {
        let c = ClusterSpec::dgx2(1);
        assert_eq!(c.total_gpus(), 16);
        // Fig. 2b row "1 node / 16 GPUs": 0.5 TB GPU, 1.5 TB CPU, 28 TB NVMe.
        assert!((c.total_gpu_mem() as f64 / 1e12 - 0.55).abs() < 0.05);
        assert!((c.total_cpu_mem() as f64 / 1e12 - 1.65).abs() < 0.1);
        assert!((c.total_nvme() as f64 / 1e12 - 30.8).abs() < 1.0);
    }

    #[test]
    fn superpod_96_nodes() {
        let c = ClusterSpec::dgx2(96);
        assert_eq!(c.total_gpus(), 1536);
        // Fig. 2b: 48 TB GPU, 144 TB CPU, 2688 TB NVMe (decimal-ish).
        assert!((c.total_gpu_mem() as f64 / 1e12 - 52.8).abs() < 2.0);
        assert!((c.total_nvme() as f64 / 1e12 - 2956.0).abs() < 100.0);
    }

    #[test]
    fn fig2b_table_shape() {
        let rows = fig2b_rows();
        assert_eq!(rows.len(), 5);
        // Memory scales linearly with node count.
        assert!((rows[3].nvme_tb / rows[1].nvme_tb - 16.0).abs() < 1e-9);
        // Per-GPU slow-memory bandwidth is constant across scales.
        assert!(rows.iter().all(|r| (r.cpu_bw_gbps - 3.0).abs() < 1e-9));
        assert!(rows.iter().all(|r| (r.nvme_bw_gbps - 1.6).abs() < 1e-9));
    }
}
