//! Model configurations and strategies used in the evaluation.
//!
//! Encodes the paper's Table 1 (main experiments) and Tables 4–8
//! (appendix) configurations, plus a dense "model family" the capacity
//! solver searches over.

/// Strategy choices evaluated in the paper (simulation-side view).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimStrategy {
    /// Classic data parallelism.
    DataParallel,
    /// ZeRO-1 (optimizer partitioned).
    Zero1,
    /// ZeRO-2 (optimizer + gradients partitioned).
    Zero2,
    /// ZeRO-Offload (ZeRO-2 with grads/optim in CPU memory).
    ZeroOffload,
    /// ZeRO-3 (all model states partitioned, GPU resident).
    Zero3,
    /// ZeRO-Infinity offloading to CPU memory.
    InfinityCpu,
    /// ZeRO-Infinity offloading to NVMe.
    InfinityNvme,
    /// 3D parallelism (tensor-slicing × pipeline × data).
    ThreeD,
}

impl SimStrategy {
    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            SimStrategy::DataParallel => "Data parallel",
            SimStrategy::Zero1 => "ZeRO 1",
            SimStrategy::Zero2 => "ZeRO 2",
            SimStrategy::ZeroOffload => "ZeRO-Offload",
            SimStrategy::Zero3 => "ZeRO 3",
            SimStrategy::InfinityCpu => "ZeRO-Inf-CPU",
            SimStrategy::InfinityNvme => "ZeRO-Inf-NVMe",
            SimStrategy::ThreeD => "3D Parallelism",
        }
    }

    /// The Fig. 6a sweep (Table 2 order).
    pub fn fig6a_order() -> Vec<SimStrategy> {
        vec![
            SimStrategy::DataParallel,
            SimStrategy::Zero1,
            SimStrategy::Zero2,
            SimStrategy::ZeroOffload,
            SimStrategy::Zero3,
            SimStrategy::InfinityCpu,
            SimStrategy::InfinityNvme,
        ]
    }
}

/// One model/training configuration, as rows of Table 1 specify.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimModel {
    /// Label, e.g. "1T".
    pub name: &'static str,
    /// Total parameters.
    pub params: u64,
    /// Transformer layers.
    pub layers: u64,
    /// Hidden dimension.
    pub hidden: u64,
    /// Attention heads.
    pub attn_heads: u64,
    /// Micro-batch per GPU (fractional for grad accumulation < 1).
    pub batch_per_gpu: f64,
    /// Model-parallel (tensor-slicing) degree.
    pub mp: u64,
    /// Sequence length.
    pub seq: u64,
    /// Activation checkpoint interval.
    pub ckpt_interval: u64,
}

impl SimModel {
    /// Construct from layer/hidden counts, deriving the parameter count
    /// from Eq. (1).
    pub fn from_shape(
        name: &'static str,
        layers: u64,
        hidden: u64,
        attn_heads: u64,
        batch_per_gpu: f64,
        mp: u64,
    ) -> Self {
        SimModel {
            name,
            params: 12 * layers * hidden * hidden,
            layers,
            hidden,
            attn_heads,
            batch_per_gpu,
            mp,
            seq: 1024,
            ckpt_interval: 1,
        }
    }
}

/// Table 1 rows for the 512-GPU experiments (Fig. 5a).
pub fn table1_512gpu() -> Vec<SimModel> {
    vec![
        SimModel::from_shape("500B", 124, 18 * 1024, 256, 7.0, 4),
        SimModel::from_shape("1T", 128, 25 * 1024, 256, 5.0, 4),
        SimModel::from_shape("5T", 174, 48 * 1024, 512, 3.0, 4),
        SimModel::from_shape("10T", 200, 64 * 1024, 512, 2.0, 4),
        SimModel::from_shape("20T", 205, 88 * 1024, 1024, 1.25, 8),
    ]
}

/// Table 1 rows for the single-node experiments (Fig. 5c).
pub fn table1_single_node() -> Vec<SimModel> {
    vec![
        SimModel::from_shape("10B", 50, 4 * 1024, 16, 8.0, 1),
        SimModel::from_shape("50B", 62, 8 * 1024, 32, 26.0, 1),
        SimModel::from_shape("100B", 125, 8 * 1024, 32, 24.0, 1),
        SimModel::from_shape("0.5T", 124, 18 * 1024, 256, 8.0, 1),
        SimModel::from_shape("1T", 128, 25 * 1024, 256, 7.0, 1),
    ]
}

/// Table 4 model family for the Fig. 6a max-model-size sweep plus denser
/// interpolations so the solver resolves each strategy's ceiling.
pub fn fig6a_family() -> Vec<SimModel> {
    vec![
        SimModel::from_shape("0.7B", 25, 1536, 16, 1.0, 1),
        SimModel::from_shape("1.4B", 50, 1536, 16, 1.0, 1),
        SimModel::from_shape("2.8B", 50, 2176, 16, 1.0, 1),
        SimModel::from_shape("5B", 44, 3072, 16, 1.0, 1),
        SimModel::from_shape("8B", 40, 4096, 16, 1.0, 1),
        SimModel::from_shape("10B", 50, 4096, 16, 1.0, 1),
        SimModel::from_shape("13B", 64, 4096, 16, 1.0, 1),
        SimModel::from_shape("20B", 98, 4096, 32, 1.0, 1),
        SimModel::from_shape("40B", 72, 6784, 32, 1.0, 1),
        SimModel::from_shape("70B", 125, 6784, 32, 1.0, 1),
        SimModel::from_shape("100B", 125, 8192, 32, 1.0, 1),
        SimModel::from_shape("200B", 126, 11520, 64, 1.0, 1),
        SimModel::from_shape("500B", 124, 18432, 256, 1.0, 1),
        SimModel::from_shape("1T", 128, 25600, 256, 1.0, 1),
        SimModel::from_shape("2T", 160, 32512, 512, 1.0, 1),
    ]
}

/// Model family for the Fig. 1 cluster-scale ceiling (32 nodes), denser
/// in the multi-trillion range.
pub fn fig1_family() -> Vec<SimModel> {
    let mut v = fig6a_family();
    v.extend([
        SimModel::from_shape("5T", 174, 49152, 512, 1.0, 4),
        SimModel::from_shape("10T", 200, 65536, 512, 1.0, 4),
        SimModel::from_shape("20T", 205, 90112, 1024, 1.0, 8),
        SimModel::from_shape("32T", 240, 105472, 1024, 1.0, 8),
        SimModel::from_shape("50T", 280, 122368, 1024, 1.0, 8),
        SimModel::from_shape("100T", 315, 163840, 1024, 1.0, 8),
    ]);
    v
}

/// Figure 6c configuration: 8B model, hidden 8192, 10 layers.
pub fn fig6c_model(batch_per_gpu: f64) -> SimModel {
    SimModel::from_shape("8B", 10, 8192, 16, batch_per_gpu, 1)
}

/// Figure 6e configurations: 5 layers, varying hidden size (Table 8).
pub fn fig6e_model(hidden: u64, batch_per_gpu: f64) -> SimModel {
    SimModel::from_shape("fig6e", 5, hidden, 16, batch_per_gpu, 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_parameter_counts() {
        // Table 1: (128 layers, 25K hidden) is the 1T configuration.
        let t = table1_512gpu();
        let one_t = t.iter().find(|m| m.name == "1T").unwrap();
        assert!((one_t.params as f64 / 1e12 - 1.0).abs() < 0.05);
        let twenty_t = t.iter().find(|m| m.name == "20T").unwrap();
        assert!((twenty_t.params as f64 / 1e12 - 20.0).abs() < 1.0);
    }

    #[test]
    fn families_are_sorted_by_size() {
        for fam in [fig6a_family(), fig1_family()] {
            for w in fam.windows(2) {
                assert!(
                    w[1].params > w[0].params,
                    "{} ({}) !> {} ({})",
                    w[1].name,
                    w[1].params,
                    w[0].name,
                    w[0].params
                );
            }
        }
    }

    #[test]
    fn named_sizes_are_accurate() {
        for m in fig1_family() {
            let billions = m.params as f64 / 1e9;
            let label = m.name;
            let expect: f64 = if let Some(t) = label.strip_suffix('T') {
                t.parse::<f64>().unwrap() * 1000.0
            } else {
                label.strip_suffix('B').unwrap().parse::<f64>().unwrap()
            };
            assert!(
                (billions - expect).abs() / expect < 0.12,
                "{label}: {billions}B vs {expect}B"
            );
        }
    }
}
