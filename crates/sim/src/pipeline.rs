//! Discrete pipeline simulation of the overlap-centric design (Sec. 6.2).
//!
//! The analytic model in [`crate::throughput`] approximates overlap as
//! `max(compute, comm)`. This module simulates the actual three-hop
//! pipeline the paper describes — `nc` (NVMe→CPU), `cg` (CPU→GPU), `gg`
//! (allgather) per module, overlapped with per-module compute — as a
//! resource-constrained schedule:
//!
//! * each hop is a serial channel (one transfer at a time, FIFO);
//! * GPU compute is a serial resource;
//! * with prefetch depth `d`, module `i`'s transfers may begin once
//!   module `i - d` has *started* computing (the paper's "invoke nc, cg
//!   and gg-transfer for parameters required by i+3, i+2, i+1");
//! * module `i`'s compute needs its own `gg` hop finished.
//!
//! The schedule reduces to a deterministic recurrence (all queues are
//! FIFO), so no event heap is needed.

/// One module's resource demands (seconds on each channel).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModuleCost {
    /// NVMe→CPU transfer time for the module's parameter shards.
    pub nc: f64,
    /// CPU→GPU transfer time.
    pub cg: f64,
    /// GPU–GPU allgather time.
    pub gg: f64,
    /// Compute time of the module itself.
    pub compute: f64,
}

impl ModuleCost {
    /// Cost of a module with `param_bytes` of fp16 parameters on a
    /// machine with the given channel bandwidths (bytes/s) and `compute`
    /// seconds of work.
    pub fn from_bytes(
        param_bytes: f64,
        nc_bw: f64,
        cg_bw: f64,
        gg_bw: f64,
        compute: f64,
    ) -> Self {
        ModuleCost {
            nc: param_bytes / nc_bw,
            cg: param_bytes / cg_bw,
            gg: param_bytes / gg_bw,
            compute,
        }
    }
}

/// Resulting schedule statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineResult {
    /// Wall-clock time for the whole module sequence.
    pub total: f64,
    /// Time the GPU spent idle waiting for parameters.
    pub compute_stall: f64,
}

/// Simulate the forward pass of `modules` with the given prefetch depth.
///
/// `depth == 0` means fully synchronous: every transfer starts only when
/// its own module is reached (the no-prefetch baseline of Fig. 6d).
pub fn simulate(modules: &[ModuleCost], depth: usize) -> PipelineResult {
    let n = modules.len();
    if n == 0 {
        return PipelineResult { total: 0.0, compute_stall: 0.0 };
    }
    // Per-channel next-free times.
    let mut nc_free = 0.0f64;
    let mut cg_free = 0.0f64;
    let mut gg_free = 0.0f64;
    let mut gpu_free = 0.0f64;
    // compute_start[i] recorded to gate transfers of module i + depth.
    let mut compute_start = vec![0.0f64; n];
    let mut stall = 0.0f64;
    let mut gg_done = vec![0.0f64; n];

    // Transfers are issued in module order (FIFO per channel). A
    // module's transfers become eligible when module (i - depth) starts
    // computing; the first `depth` modules are eligible at time 0.
    for i in 0..n {
        let eligible = if depth == 0 {
            // Synchronous: wait until the GPU actually reaches module i
            // (i.e. the previous module finished computing).
            if i == 0 { 0.0 } else { gpu_free }
        } else if i < depth {
            0.0
        } else {
            compute_start[i - depth]
        };
        let m = &modules[i];
        let nc_start = nc_free.max(eligible);
        let nc_done = nc_start + m.nc;
        nc_free = nc_done;
        let cg_start = cg_free.max(nc_done);
        let cg_done = cg_start + m.cg;
        cg_free = cg_done;
        let gg_start = gg_free.max(cg_done);
        gg_done[i] = gg_start + m.gg;
        gg_free = gg_done[i];

        let start = gpu_free.max(gg_done[i]);
        stall += start - gpu_free;
        compute_start[i] = start;
        gpu_free = start + m.compute;
    }
    PipelineResult { total: gpu_free, compute_stall: stall }
}

/// Speedup of prefetch depth `d` over the synchronous schedule.
pub fn prefetch_speedup(modules: &[ModuleCost], depth: usize) -> f64 {
    let sync = simulate(modules, 0).total;
    let over = simulate(modules, depth).total;
    sync / over
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform(n: usize, nc: f64, cg: f64, gg: f64, compute: f64) -> Vec<ModuleCost> {
        vec![ModuleCost { nc, cg, gg, compute }; n]
    }

    #[test]
    fn synchronous_is_sum_of_stages() {
        let mods = uniform(5, 1.0, 0.5, 0.25, 2.0);
        let r = simulate(&mods, 0);
        // Each module serializes all four stages.
        assert!((r.total - 5.0 * 3.75).abs() < 1e-9, "{}", r.total);
        assert!((r.compute_stall - 5.0 * 1.75).abs() < 1e-9);
    }

    #[test]
    fn deep_prefetch_reaches_bottleneck_bound() {
        // Compute-dominant workload: with enough prefetch depth, total
        // time approaches first-fill + n * compute.
        let mods = uniform(20, 0.3, 0.2, 0.1, 1.0);
        let r = simulate(&mods, 3);
        let lower_bound = 20.0 * 1.0;
        assert!(r.total >= lower_bound);
        assert!(
            r.total < lower_bound + 2.0,
            "pipeline should hide transfers: {} vs bound {lower_bound}",
            r.total
        );
        // Stall confined to the pipeline fill.
        assert!(r.compute_stall < 1.0, "stall {}", r.compute_stall);
    }

    #[test]
    fn transfer_bound_workload_is_nc_limited() {
        // NVMe-dominant: total approaches n * nc no matter the depth.
        let mods = uniform(20, 2.0, 0.1, 0.1, 0.5);
        let r = simulate(&mods, 3);
        assert!(r.total >= 20.0 * 2.0);
        assert!(r.total < 20.0 * 2.0 + 2.0, "{}", r.total);
    }

    #[test]
    fn speedup_increases_with_depth_then_saturates() {
        let mods = uniform(16, 0.5, 0.4, 0.3, 1.0);
        let s1 = prefetch_speedup(&mods, 1);
        let s2 = prefetch_speedup(&mods, 2);
        let s3 = prefetch_speedup(&mods, 3);
        let s6 = prefetch_speedup(&mods, 6);
        assert!(s1 > 1.0);
        assert!(s2 >= s1);
        assert!(s3 >= s2);
        // Depth 3 covers the three hops; deeper barely helps.
        assert!(s6 - s3 < 0.2, "s3={s3} s6={s6}");
        // The three-hop pipeline at depth 3 approaches the ideal ratio
        // (sum of stages) / (bottleneck stage).
        assert!(s3 > 1.8, "s3={s3}");
    }

    #[test]
    fn matches_analytic_max_model_asymptotically() {
        // For long sequences the analytic `max(compute, comm)` model and
        // the pipeline simulation agree per module.
        let n = 200;
        let m = ModuleCost { nc: 0.4, cg: 0.3, gg: 0.2, compute: 0.35 };
        let mods = vec![m; n];
        let r = simulate(&mods, 3);
        let per_module = r.total / n as f64;
        let analytic = m.nc.max(m.cg).max(m.gg).max(m.compute);
        assert!(
            (per_module - analytic).abs() / analytic < 0.05,
            "simulated {per_module} vs analytic {analytic}"
        );
    }

    #[test]
    fn empty_and_single_module() {
        assert_eq!(simulate(&[], 3).total, 0.0);
        let one = [ModuleCost { nc: 1.0, cg: 1.0, gg: 1.0, compute: 1.0 }];
        let r = simulate(&one, 3);
        assert!((r.total - 4.0).abs() < 1e-9);
    }

    #[test]
    fn fig6d_shape_from_first_principles() {
        // As per-module compute grows (bigger batch), the prefetch
        // speedup shrinks — the Fig. 6d claim derived from the pipeline
        // rather than asserted.
        let mk = |compute: f64| uniform(12, 0.5, 0.3, 0.2, compute);
        let small_batch = prefetch_speedup(&mk(0.4), 3);
        let large_batch = prefetch_speedup(&mk(4.0), 3);
        assert!(small_batch > 1.5, "small-batch speedup {small_batch}");
        assert!(large_batch < 1.3, "large-batch speedup {large_batch}");
        assert!(small_batch > large_batch);
    }
}
