//! Iteration-time model (Fig. 5a–c, Fig. 6c–e).
//!
//! Decomposes one training iteration into compute, GPU–GPU collective
//! traffic, slow-memory (CPU/NVMe) parameter/gradient traffic, activation
//! checkpoint I/O, and the optimizer step, using the hardware numbers of
//! [`crate::cluster::ClusterSpec`] and the traffic volumes implied by each
//! strategy. With overlap enabled (the paper's overlap-centric design,
//! Sec. 6.2), forward/backward communication hides behind compute
//! (`max`); without it the stages serialize (`sum`). The optimizer step
//! never overlaps (Sec. 4.2) but its NVMe reads and writes overlap each
//! other (Sec. 5.2.2).

use zi_types::DeviceKind;

use crate::cluster::ClusterSpec;
use crate::model_cfg::{SimModel, SimStrategy};

/// Fraction of the achievable peak that survives non-GEMM overhead in a
/// real implementation (the paper's 500B run reaches ~49 of 70 TFlops).
const IMPL_EFFICIENCY: f64 = 0.75;

/// CPU memory bandwidth per GPU share when the optimizer runs on CPU
/// (aggregate ~100 GB/s per node over 16 GPUs).
const CPU_OPTIM_BW_PER_GPU: f64 = 6e9;

/// Knobs for ablation studies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimOptions {
    /// Overlap communication with compute (prefetcher + overlap engine).
    pub overlap: bool,
    /// Offload activation checkpoints to CPU memory.
    pub act_ckpt_offload: bool,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions { overlap: true, act_ckpt_offload: false }
    }
}

/// Per-iteration time decomposition (seconds) and derived throughput.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeBreakdown {
    /// GPU compute time.
    pub compute: f64,
    /// GPU–GPU collective time (param gathers + grad reductions).
    pub gg_comm: f64,
    /// Slow-memory traffic for parameters/gradients during fwd+bwd.
    pub slow_io: f64,
    /// Activation checkpoint offload traffic.
    pub act_io: f64,
    /// Optimizer step time (not overlappable with fwd/bwd).
    pub optimizer: f64,
    /// Total iteration time.
    pub total: f64,
    /// Achieved TFlops per GPU.
    pub tflops_per_gpu: f64,
}

/// Where each strategy keeps params/grads/optimizer for traffic purposes.
fn placements(strategy: SimStrategy) -> (DeviceKind, DeviceKind, DeviceKind) {
    use DeviceKind::*;
    match strategy {
        SimStrategy::DataParallel
        | SimStrategy::Zero1
        | SimStrategy::Zero2
        | SimStrategy::Zero3
        | SimStrategy::ThreeD => (Gpu, Gpu, Gpu),
        SimStrategy::ZeroOffload => (Gpu, Cpu, Cpu),
        SimStrategy::InfinityCpu => (Cpu, Cpu, Cpu),
        SimStrategy::InfinityNvme => (Nvme, Cpu, Nvme),
    }
}

fn slow_bw_per_gpu(cluster: &ClusterSpec, tier: DeviceKind) -> f64 {
    match tier {
        DeviceKind::Gpu => f64::INFINITY,
        DeviceKind::Cpu => cluster.cpu_bw_per_gpu,
        DeviceKind::Nvme => cluster.nvme_bw_per_gpu,
    }
}

/// Model one training iteration.
pub fn iteration_time(
    strategy: SimStrategy,
    cluster: &ClusterSpec,
    model: &SimModel,
    opts: &SimOptions,
) -> TimeBreakdown {
    let p = model.params as f64;
    let mp = model.mp as f64;
    let n = cluster.total_gpus() as f64;
    let dp = n / mp;
    let bsz = model.batch_per_gpu;
    let seq = model.seq as f64;

    // Eq. (7): fwd(2) + bwd(4) + checkpoint recompute(2) flops per token,
    // split over the tensor-parallel group.
    let flops_per_gpu = 8.0 * bsz * seq * p / mp;
    let compute = flops_per_gpu / (cluster.gpu_peak * IMPL_EFFICIENCY);

    let (param_tier, grad_tier, optim_tier) = placements(strategy);
    let params_partitioned = matches!(
        strategy,
        SimStrategy::Zero3 | SimStrategy::InfinityCpu | SimStrategy::InfinityNvme
    );

    // GPU–GPU collective traffic per GPU: partitioned parameters are
    // gathered 3x (fwd, recompute, bwd) and gradients reduce-scattered
    // once, each moving ~2 bytes/param of the mp-local model. Replicated
    // parameters only pay the gradient allreduce (2 moves).
    let gg_bytes = if params_partitioned {
        (3.0 * 2.0 * p + 2.0 * p) / mp
    } else {
        2.0 * 2.0 * p / mp
    };
    let gg_comm = match strategy {
        // 3D parallelism exchanges activations for tensor slicing and
        // pipeline boundaries instead of gathering parameters; its
        // communication is captured by the efficiency factor below.
        SimStrategy::ThreeD => 2.0 * 2.0 * p / mp / cluster.gg_bw,
        _ => gg_bytes / cluster.gg_bw,
    };

    // Slow-memory traffic for params and grads during fwd+bwd.
    let slow_io = {
        // Bandwidth-centric partitioning: each GPU only moves its own
        // 1/dp shard through its own links (Sec. 6.1).
        let param_bytes = if param_tier == DeviceKind::Gpu {
            0.0
        } else {
            3.0 * 2.0 * p / mp / dp
        };
        let param_t = param_bytes / slow_bw_per_gpu(cluster, param_tier);
        let grad_t = match strategy {
            // ZeRO-Offload moves gradients to CPU through a single PCIe
            // link per node (the Fig. 6c contrast).
            SimStrategy::ZeroOffload => 2.0 * p / mp / cluster.pcie_single,
            _ if grad_tier == DeviceKind::Gpu => 0.0,
            // ZeRO-Infinity: every GPU offloads its shard in parallel.
            _ => 2.0 * p / mp / dp / slow_bw_per_gpu(cluster, grad_tier),
        };
        param_t + grad_t
    };

    // Activation checkpoint offload: store in fwd + load in bwd, over the
    // per-GPU CPU link (Sec. 5.2.3).
    let act_io = if opts.act_ckpt_offload {
        let act_bytes = 2.0 * bsz * seq * model.hidden as f64 * model.layers as f64
            / model.ckpt_interval as f64
            / mp;
        2.0 * act_bytes / cluster.cpu_bw_per_gpu
    } else {
        0.0
    };

    // Optimizer step: read + write 16 bytes/param of this rank's shard.
    // Overlapping NVMe reads with writes halves the exposed time
    // (Sec. 5.2.2). Never overlapped with fwd/bwd.
    let optim_shard = p / mp / if strategy == SimStrategy::DataParallel { 1.0 } else { dp };
    let optim_bw = match optim_tier {
        DeviceKind::Gpu => 900e9, // HBM
        DeviceKind::Cpu => CPU_OPTIM_BW_PER_GPU,
        DeviceKind::Nvme => cluster.nvme_bw_per_gpu,
    };
    let mut optimizer = 2.0 * 16.0 * optim_shard / optim_bw;
    if opts.overlap && optim_tier == DeviceKind::Nvme {
        optimizer /= 2.0;
    }

    // 3D parallelism pays pipeline bubbles: with usable GPU memory
    // `0.8 * gpu_mem`, the data-parallel degree is capped by
    // `20P * dp / N <= usable`, the rest of the GPUs form the
    // tensor-slicing x pipeline grid, and the bubble follows the classic
    // `m / (m + pp - 1)` fill/drain model with one-sequence micro-batches.
    let compute = if strategy == SimStrategy::ThreeD {
        let usable = 0.8 * cluster.gpu_mem as f64;
        let dp3 = (usable * n / (20.0 * p)).floor().max(1.0);
        let mp3 = 8.0f64.min(cluster.gpus_per_node as f64);
        let pp = (n / (mp3 * dp3)).max(1.0);
        // Sequences per pipeline per iteration (micro-batch size 1).
        let m = (bsz * n / mp / dp3).max(1.0);
        let bubble_eff = m / (m + pp - 1.0);
        compute / bubble_eff
    } else {
        compute
    };

    let fwd_bwd = if opts.overlap {
        compute.max(gg_comm).max(slow_io).max(act_io)
    } else {
        compute + gg_comm + slow_io + act_io
    };
    let total = fwd_bwd + optimizer;
    TimeBreakdown {
        compute,
        gg_comm,
        slow_io,
        act_io,
        optimizer,
        total,
        tflops_per_gpu: flops_per_gpu / total / 1e12,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model_cfg::{fig6c_model, table1_512gpu};

    #[test]
    fn five_hundred_b_matches_3d_parallelism() {
        // Fig. 5a: at 500B, ZeRO-Infinity ≈ 3D parallelism throughput.
        let c = ClusterSpec::dgx2(32);
        let m = &table1_512gpu()[0];
        let inf = iteration_time(SimStrategy::InfinityNvme, &c, m, &SimOptions::default());
        let threed = iteration_time(SimStrategy::ThreeD, &c, m, &SimOptions::default());
        let ratio = inf.tflops_per_gpu / threed.tflops_per_gpu;
        assert!(
            (0.75..1.3).contains(&ratio),
            "Infinity {:.1} vs 3D {:.1} TFlops",
            inf.tflops_per_gpu,
            threed.tflops_per_gpu
        );
        // Both in the vicinity of the paper's ~49 TFlops/GPU.
        assert!((30.0..60.0).contains(&inf.tflops_per_gpu));
    }

    #[test]
    fn throughput_degrades_gracefully_to_20t() {
        // Fig. 5a shape: high TFlops through 10T, visible drop at 20T
        // (tiny batch per GPU starves compute relative to optimizer I/O).
        let c = ClusterSpec::dgx2(32);
        let models = table1_512gpu();
        let tf: Vec<f64> = models
            .iter()
            .map(|m| {
                iteration_time(SimStrategy::InfinityNvme, &c, m, &SimOptions::default())
                    .tflops_per_gpu
            })
            .collect();
        // All runs stay efficient (paper: 25+ pflops on 512 GPUs ⇒ >34
        // TFlops/GPU even at 20T).
        assert!(tf.iter().all(|&t| t > 20.0), "tflops: {tf:?}");
        // 20T is the slowest of the sweep.
        let min = tf.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!((tf[4] - min).abs() < 1e-9, "20T should be slowest: {tf:?}");
        // And the drop from 10T to 20T is pronounced (paper: 43 → 34).
        assert!(tf[3] / tf[4] > 1.15, "10T {:.1} vs 20T {:.1}", tf[3], tf[4]);
    }

    #[test]
    fn superlinear_weak_scaling_fig5b() {
        // Fig. 5b: 1T model, batch/node constant, 4 → 32 nodes. Per-GPU
        // throughput must *increase* with scale (superlinear total).
        let m = SimModel {
            batch_per_gpu: 8.0,
            ..crate::model_cfg::table1_512gpu()[1]
        };
        let mut last = 0.0;
        for nodes in [4u64, 8, 16, 32] {
            let c = ClusterSpec::dgx2(nodes);
            let t = iteration_time(SimStrategy::InfinityNvme, &c, &m, &SimOptions::default());
            assert!(
                t.tflops_per_gpu > last,
                "{nodes} nodes: {:.1} TFlops not superlinear (prev {last:.1})",
                t.tflops_per_gpu
            );
            last = t.tflops_per_gpu;
        }
        // Paper: 2.8 pflops on 4 nodes (44 TFlops/GPU) — ours within 2x.
        let c4 = ClusterSpec::dgx2(4);
        let t4 = iteration_time(SimStrategy::InfinityNvme, &c4, &m, &SimOptions::default());
        assert!((20.0..70.0).contains(&t4.tflops_per_gpu));
    }

    #[test]
    fn fig6c_gradient_offload_speedup_grows_with_gpus() {
        // ZeRO-Infinity's aggregate-PCIe gradient offload vs
        // ZeRO-Offload's single-link path: speedup approaches ~2x at 64
        // GPUs and is smaller at 4 GPUs.
        let opts = SimOptions { overlap: false, act_ckpt_offload: false };
        let bwd_time = |strategy: SimStrategy, gpus: u64| {
            let c = if gpus < 16 {
                ClusterSpec { gpus_per_node: gpus, ..ClusterSpec::dgx2(1) }
            } else {
                ClusterSpec::dgx2(gpus / 16)
            };
            let m = fig6c_model(2.0);
            let t = iteration_time(strategy, &c, &m, &opts);
            // Backward ≈ 2/3 of compute plus the gradient offload.
            2.0 / 3.0 * t.compute + t.slow_io
        };
        let speedup_64 = bwd_time(SimStrategy::ZeroOffload, 64)
            / bwd_time(SimStrategy::InfinityCpu, 64);
        let speedup_4 = bwd_time(SimStrategy::ZeroOffload, 4)
            / bwd_time(SimStrategy::InfinityCpu, 4);
        assert!(speedup_64 > speedup_4, "speedup must grow: {speedup_4} -> {speedup_64}");
        assert!((1.5..3.0).contains(&speedup_64), "64-GPU speedup {speedup_64} (paper ~2x)");
        assert!(speedup_4 < 1.6, "4-GPU speedup {speedup_4}");
    }

    #[test]
    fn fig6d_overlap_matters_most_at_small_batch() {
        // Fig. 6d: prefetching + overlap gives a large win at batch 2,
        // negligible at batch 16.
        let c = ClusterSpec::dgx2(4); // 64 GPUs
        let gain = |bsz: f64| {
            let m = fig6c_model(bsz);
            let on = iteration_time(
                SimStrategy::InfinityNvme,
                &c,
                &m,
                &SimOptions { overlap: true, act_ckpt_offload: false },
            );
            let off = iteration_time(
                SimStrategy::InfinityNvme,
                &c,
                &m,
                &SimOptions { overlap: false, act_ckpt_offload: false },
            );
            on.tflops_per_gpu / off.tflops_per_gpu
        };
        let g2 = gain(2.0);
        let g16 = gain(16.0);
        assert!(g2 > 1.3, "batch 2 overlap gain {g2}");
        assert!(g16 < g2, "gain must diminish with batch: {g2} -> {g16}");
        assert!(g16 < 1.5, "batch 16 overlap gain {g16}");
    }

    #[test]
    fn fig6e_act_offload_overhead_vanishes_at_large_hidden() {
        // Fig. 6e: activation checkpoint offload costs up to ~1.2x at
        // hidden 2K, nothing at 32K+.
        let c = ClusterSpec::dgx2(2); // 32 GPUs
        let overhead = |hidden: u64| {
            let m = crate::model_cfg::fig6e_model(hidden, 4.0);
            let with = iteration_time(
                SimStrategy::InfinityCpu,
                &c,
                &m,
                &SimOptions { overlap: false, act_ckpt_offload: true },
            );
            let without = iteration_time(
                SimStrategy::InfinityCpu,
                &c,
                &m,
                &SimOptions { overlap: false, act_ckpt_offload: false },
            );
            with.total / without.total
        };
        let small = overhead(2048);
        let large = overhead(32 * 1024);
        assert!(small > 1.05, "2K overhead {small} (paper up to 1.2x)");
        assert!(small < 1.6, "2K overhead {small} not absurd");
        assert!(large < 1.05, "32K overhead {large} (paper: minimal)");
    }

    #[test]
    fn single_node_fig5c_stays_efficient_to_100b() {
        // Fig. 5c: ≥40 TFlops/GPU for 10B–100B on one node; 1T still
        // trains (slower) with NVMe offload and no model parallelism.
        let c = ClusterSpec::dgx2(1);
        let models = crate::model_cfg::table1_single_node();
        for m in &models[..3] {
            let strategy = if m.params <= 10_000_000_000 {
                SimStrategy::Zero3
            } else {
                SimStrategy::InfinityNvme
            };
            let t = iteration_time(strategy, &c, m, &SimOptions::default());
            assert!(t.tflops_per_gpu > 30.0, "{}: {:.1} TFlops", m.name, t.tflops_per_gpu);
        }
        let one_t = iteration_time(
            SimStrategy::InfinityNvme,
            &c,
            &models[4],
            &SimOptions::default(),
        );
        assert!(one_t.tflops_per_gpu > 10.0, "1T single node {:.1}", one_t.tflops_per_gpu);
        assert!(one_t.total.is_finite());
    }
}
