#![warn(missing_docs)]

//! Cluster-scale performance and capacity simulator.
//!
//! The paper's evaluation (Sec. 8) runs on 32 DGX-2 nodes (512 V100s).
//! This crate reproduces those experiments analytically, using the
//! hardware characteristics the paper itself publishes (Fig. 2b) and the
//! memory/bandwidth model of `zi-perf`:
//!
//! * [`cluster`] — DGX-2 / SuperPOD hardware descriptions (Fig. 2b).
//! * [`model_cfg`] — the model configurations of Table 1 and Tables 4–8.
//! * [`capacity`] — per-strategy device memory requirements and the
//!   max-model-size solver (Fig. 1, Fig. 6a).
//! * [`throughput`] — the iteration-time model with overlap, offload
//!   traffic and pipeline effects (Fig. 5a–c, Fig. 6c–e).
//! * [`figures`] — one function per paper figure, returning typed rows
//!   that the bench harness prints and the tests assert against.

pub mod capacity;
pub mod cluster;
pub mod figures;
pub mod model_cfg;
pub mod pipeline;
pub mod throughput;

pub use capacity::{max_model_size, memory_requirement, MemoryRequirement};
pub use cluster::ClusterSpec;
pub use model_cfg::{SimModel, SimStrategy};
pub use pipeline::{simulate as simulate_pipeline, ModuleCost, PipelineResult};
pub use throughput::{iteration_time, TimeBreakdown};
