//! Per-strategy device memory requirements and the max-model-size solver
//! (Fig. 1 and Fig. 6a).

use crate::cluster::ClusterSpec;
use crate::model_cfg::{SimModel, SimStrategy};

/// Bytes a training configuration needs on each tier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryRequirement {
    /// Per-GPU HBM bytes.
    pub gpu_per_gpu: f64,
    /// Per-node CPU DRAM bytes.
    pub cpu_per_node: f64,
    /// Per-node NVMe bytes.
    pub nvme_per_node: f64,
}

/// Fraction of GPU memory usable for model states under 3D parallelism
/// (the rest goes to activations, pipeline buffers and fragmentation).
const THREED_USABLE: f64 = 0.8;

/// Compute where the 20 bytes/parameter of model states (Sec. 3) plus
/// activations and working memory land for each strategy of Table 2.
pub fn memory_requirement(
    strategy: SimStrategy,
    cluster: &ClusterSpec,
    model: &SimModel,
) -> MemoryRequirement {
    let p = model.params as f64;
    let n = cluster.total_gpus() as f64;
    let nodes = cluster.nodes as f64;
    let mp = model.mp as f64;

    // Working memory (Eq. 4–5), divided by the tensor-slicing degree.
    let hd = model.hidden as f64;
    let mswm = 4.0 * hd * 4.0 * hd / mp;
    let awm = model.batch_per_gpu
        * model.seq as f64
        * model.ckpt_interval as f64
        * (16.0 * hd + 2.0 * model.attn_heads as f64 * model.seq as f64)
        / mp;
    let work = mswm + awm;

    // Activation checkpoints (Eq. 3), per GPU and per node.
    let act_per_gpu = 2.0 * model.batch_per_gpu * model.seq as f64 * hd * model.layers as f64
        / model.ckpt_interval as f64
        / mp;
    let act_per_node = act_per_gpu * cluster.gpus_per_node as f64;

    // Model state components in bytes: fp16 params (2P), fp16 grads (2P),
    // fp32 optimizer master+momentum+variance (16P).
    let (params_b, grads_b, optim_b) = (2.0 * p, 2.0 * p, 16.0 * p);

    match strategy {
        SimStrategy::DataParallel => MemoryRequirement {
            gpu_per_gpu: params_b + grads_b + optim_b + act_per_gpu + work,
            cpu_per_node: 0.0,
            nvme_per_node: 0.0,
        },
        SimStrategy::Zero1 => MemoryRequirement {
            gpu_per_gpu: params_b + grads_b + optim_b / n + act_per_gpu + work,
            cpu_per_node: 0.0,
            nvme_per_node: 0.0,
        },
        SimStrategy::Zero2 => MemoryRequirement {
            gpu_per_gpu: params_b + (grads_b + optim_b) / n + act_per_gpu + work,
            cpu_per_node: 0.0,
            nvme_per_node: 0.0,
        },
        SimStrategy::ZeroOffload => MemoryRequirement {
            gpu_per_gpu: params_b + act_per_gpu + work,
            cpu_per_node: (grads_b + optim_b) / nodes,
            nvme_per_node: 0.0,
        },
        SimStrategy::Zero3 => MemoryRequirement {
            gpu_per_gpu: (params_b + grads_b + optim_b) / n + act_per_gpu + work,
            cpu_per_node: 0.0,
            nvme_per_node: 0.0,
        },
        SimStrategy::InfinityCpu => MemoryRequirement {
            gpu_per_gpu: work,
            cpu_per_node: (params_b + grads_b + optim_b) / nodes + act_per_node,
            nvme_per_node: 0.0,
        },
        SimStrategy::InfinityNvme => MemoryRequirement {
            gpu_per_gpu: work,
            cpu_per_node: act_per_node,
            nvme_per_node: (params_b + grads_b + optim_b) / nodes,
        },
        SimStrategy::ThreeD => MemoryRequirement {
            // 3D parallelism spreads model states over all GPUs; the
            // usable fraction accounts for activations and pipeline
            // buffers.
            gpu_per_gpu: (params_b + grads_b + optim_b) / n / THREED_USABLE,
            cpu_per_node: 0.0,
            nvme_per_node: 0.0,
        },
    }
}

/// Does this configuration fit on the cluster?
pub fn fits(strategy: SimStrategy, cluster: &ClusterSpec, model: &SimModel) -> bool {
    let req = memory_requirement(strategy, cluster, model);
    req.gpu_per_gpu <= cluster.gpu_mem as f64
        && req.cpu_per_node <= cluster.cpu_mem as f64
        && req.nvme_per_node <= cluster.nvme as f64
}

/// Largest model in `family` that fits; `None` if even the smallest OOMs.
pub fn max_model_size<'a>(
    strategy: SimStrategy,
    cluster: &ClusterSpec,
    family: &'a [SimModel],
) -> Option<&'a SimModel> {
    family.iter().rev().find(|m| fits(strategy, cluster, m))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model_cfg::{fig1_family, fig6a_family};

    fn node() -> ClusterSpec {
        ClusterSpec::dgx2(1)
    }

    fn max_params(strategy: SimStrategy, cluster: &ClusterSpec, fam: &[SimModel]) -> u64 {
        max_model_size(strategy, cluster, fam).map(|m| m.params).unwrap_or(0)
    }

    /// Fig. 6a: the strategy ladder on a single DGX-2.
    #[test]
    fn fig6a_ladder_matches_paper() {
        let fam = fig6a_family();
        let c = node();
        let dp = max_params(SimStrategy::DataParallel, &c, &fam);
        let z2 = max_params(SimStrategy::Zero2, &c, &fam);
        let off = max_params(SimStrategy::ZeroOffload, &c, &fam);
        let z3 = max_params(SimStrategy::Zero3, &c, &fam);
        let icpu = max_params(SimStrategy::InfinityCpu, &c, &fam);
        let invme = max_params(SimStrategy::InfinityNvme, &c, &fam);

        // Paper: DP 1.4B; ZeRO-2/Offload ~13B; ZeRO-3 20B; Inf-CPU ~70B
        // ("almost 100B"); Inf-NVMe 1T.
        assert!((1.0e9..2.8e9).contains(&(dp as f64)), "DP ceiling {dp}");
        assert!((8e9..16e9).contains(&(z2 as f64)), "ZeRO-2 ceiling {z2}");
        assert!((10e9..20e9).contains(&(off as f64)), "Offload ceiling {off}");
        assert!((18e9..32e9).contains(&(z3 as f64)), "ZeRO-3 ceiling {z3}");
        assert!((5e10..1.1e11).contains(&(icpu as f64)), "Inf-CPU ceiling {icpu}");
        assert!((7e11..1.5e12).contains(&(invme as f64)), "Inf-NVMe ceiling {invme}");

        // Ordering is strict: each rung beats the previous.
        assert!(dp < z2 && z2 <= off && off < z3 && z3 < icpu && icpu < invme);

        // Paper headline: 700x from data parallelism to Inf-NVMe.
        let factor = invme as f64 / dp as f64;
        assert!((300.0..1500.0).contains(&factor), "DP→Inf-NVMe factor {factor}");
    }

    /// Fig. 1: 32-node ceilings — 3D parallelism ~0.65T, ZeRO-Infinity
    /// ~32T, a ~50x leap.
    #[test]
    fn fig1_ceilings_match_paper() {
        let c = ClusterSpec::dgx2(32);
        let fam = fig1_family();
        let threed = max_params(SimStrategy::ThreeD, &c, &fam);
        let inf = max_params(SimStrategy::InfinityNvme, &c, &fam);
        assert!(
            (4e11..8e11).contains(&(threed as f64)),
            "3D ceiling {threed} (paper ~650B)"
        );
        assert!(
            (2e13..4.5e13).contains(&(inf as f64)),
            "Infinity ceiling {inf} (paper 32T)"
        );
        let leap = inf as f64 / threed as f64;
        assert!((20.0..100.0).contains(&leap), "scale leap {leap}x (paper ~50x)");
    }

    /// Per-node ZeRO-Infinity supports ~1T parameters (Sec. 5.1): the
    /// trillion-per-node headline.
    #[test]
    fn one_trillion_per_node() {
        let fam = fig1_family();
        for nodes in [1u64, 2, 4] {
            let c = ClusterSpec::dgx2(nodes);
            let inf = max_params(SimStrategy::InfinityNvme, &c, &fam) as f64;
            let per_node = inf / nodes as f64;
            assert!(
                (0.6e12..1.6e12).contains(&per_node),
                "{nodes} nodes: {per_node} params/node"
            );
        }
    }

    #[test]
    fn nothing_fits_returns_none() {
        let mut c = node();
        c.gpu_mem = 1 << 20; // 1 MiB GPUs
        c.cpu_mem = 1 << 20;
        c.nvme = 1 << 20;
        assert!(max_model_size(SimStrategy::DataParallel, &c, &fig6a_family()).is_none());
        assert!(max_model_size(SimStrategy::InfinityNvme, &c, &fig6a_family()).is_none());
    }

    #[test]
    fn gpu_memory_freed_by_offload() {
        let c = node();
        let m = fig6a_family()[7]; // 20B
        let z3 = memory_requirement(SimStrategy::Zero3, &c, &m);
        let icpu = memory_requirement(SimStrategy::InfinityCpu, &c, &m);
        assert!(icpu.gpu_per_gpu < z3.gpu_per_gpu / 2.0);
        assert!(icpu.cpu_per_node > 0.0);
        let invme = memory_requirement(SimStrategy::InfinityNvme, &c, &m);
        assert!(invme.nvme_per_node > 0.0);
        assert!(invme.cpu_per_node < icpu.cpu_per_node);
    }
}
