//! One function per paper figure/table, producing typed rows.
//!
//! The `zi-bench` repro binary prints these; the tests in this module and
//! in `throughput`/`capacity` assert the shapes the paper reports.

use crate::capacity::max_model_size;
use crate::cluster::ClusterSpec;
use crate::model_cfg::{
    fig1_family, fig6a_family, fig6c_model, fig6e_model, table1_512gpu, table1_single_node,
    SimModel, SimStrategy,
};
use crate::throughput::{iteration_time, SimOptions};

/// Fig. 1: maximum trainable model size on 32 DGX-2 nodes.
#[derive(Debug, Clone)]
pub struct Fig1Row {
    /// Strategy compared.
    pub strategy: SimStrategy,
    /// Largest trainable parameter count.
    pub max_params: u64,
    /// Name of the largest fitting configuration.
    pub model_name: &'static str,
}

/// Compute Fig. 1 (3D parallelism vs ZeRO-Infinity, 512 GPUs).
pub fn fig1() -> Vec<Fig1Row> {
    let cluster = ClusterSpec::dgx2(32);
    let family = fig1_family();
    [SimStrategy::ThreeD, SimStrategy::InfinityNvme]
        .into_iter()
        .map(|s| {
            let m = max_model_size(s, &cluster, &family);
            Fig1Row {
                strategy: s,
                max_params: m.map(|m| m.params).unwrap_or(0),
                model_name: m.map(|m| m.name).unwrap_or("-"),
            }
        })
        .collect()
}

/// A throughput point for the Fig. 5 family.
#[derive(Debug, Clone)]
pub struct ThroughputRow {
    /// Configuration label ("500B", "1T", ...).
    pub model: &'static str,
    /// Strategy evaluated.
    pub strategy: SimStrategy,
    /// GPUs used.
    pub gpus: u64,
    /// Achieved TFlops per GPU.
    pub tflops_per_gpu: f64,
    /// Aggregate petaflops.
    pub pflops_total: f64,
    /// Whether the configuration fits in memory at all.
    pub fits: bool,
}

fn throughput_row(
    strategy: SimStrategy,
    cluster: &ClusterSpec,
    model: &SimModel,
) -> ThroughputRow {
    let fits = crate::capacity::fits(strategy, cluster, model);
    let t = iteration_time(strategy, cluster, model, &SimOptions::default());
    ThroughputRow {
        model: model.name,
        strategy,
        gpus: cluster.total_gpus(),
        tflops_per_gpu: if fits { t.tflops_per_gpu } else { 0.0 },
        pflops_total: if fits {
            t.tflops_per_gpu * cluster.total_gpus() as f64 / 1000.0
        } else {
            0.0
        },
        fits,
    }
}

/// Fig. 5a: 500B–20T on 512 GPUs, ZeRO-Infinity vs 3D parallelism.
pub fn fig5a() -> Vec<ThroughputRow> {
    let cluster = ClusterSpec::dgx2(32);
    let mut rows = Vec::new();
    for m in table1_512gpu() {
        rows.push(throughput_row(SimStrategy::InfinityNvme, &cluster, &m));
        rows.push(throughput_row(SimStrategy::ThreeD, &cluster, &m));
    }
    rows
}

/// Fig. 5b: weak scaling of a 1T model from 4 to 32 nodes.
pub fn fig5b() -> Vec<ThroughputRow> {
    let model = SimModel { batch_per_gpu: 8.0, ..table1_512gpu()[1] };
    [4u64, 8, 16, 32]
        .into_iter()
        .map(|nodes| throughput_row(SimStrategy::InfinityNvme, &ClusterSpec::dgx2(nodes), &model))
        .collect()
}

/// Fig. 5c: 10B–1T on a single DGX-2 node, no model parallelism.
pub fn fig5c() -> Vec<ThroughputRow> {
    let cluster = ClusterSpec::dgx2(1);
    table1_single_node()
        .into_iter()
        .map(|m| {
            // Placement ladder from Table 1: GPU for 10B, CPU/NVMe mix
            // beyond; the sim picks the cheapest tier that fits.
            let strategy = if crate::capacity::fits(SimStrategy::Zero3, &cluster, &m) {
                SimStrategy::Zero3
            } else if crate::capacity::fits(SimStrategy::InfinityCpu, &cluster, &m) {
                SimStrategy::InfinityCpu
            } else {
                SimStrategy::InfinityNvme
            };
            throughput_row(strategy, &cluster, &m)
        })
        .collect()
}

/// Fig. 6a row: a strategy and its single-node model-scale ceiling.
#[derive(Debug, Clone)]
pub struct Fig6aRow {
    /// Strategy (Table 2 order).
    pub strategy: SimStrategy,
    /// Largest trainable parameter count on one DGX-2.
    pub max_params: u64,
    /// Label of that configuration.
    pub model_name: &'static str,
}

/// Fig. 6a: max model size per strategy on one DGX-2 node.
pub fn fig6a() -> Vec<Fig6aRow> {
    let cluster = ClusterSpec::dgx2(1);
    let family = fig6a_family();
    SimStrategy::fig6a_order()
        .into_iter()
        .map(|s| {
            let m = max_model_size(s, &cluster, &family);
            Fig6aRow {
                strategy: s,
                max_params: m.map(|m| m.params).unwrap_or(0),
                model_name: m.map(|m| m.name).unwrap_or("-"),
            }
        })
        .collect()
}

/// Fig. 6c row: backward time at a GPU count.
#[derive(Debug, Clone)]
pub struct Fig6cRow {
    /// GPUs used.
    pub gpus: u64,
    /// ZeRO-Offload backward seconds (single-PCIe gradient path).
    pub offload_bwd_s: f64,
    /// ZeRO-Infinity backward seconds (aggregate-PCIe gradient path).
    pub infinity_bwd_s: f64,
    /// Speedup of ZeRO-Infinity.
    pub speedup: f64,
}

/// Fig. 6c: gradient-offload backward time, 8B model, 4–64 GPUs.
///
/// Isolates the *gradient* offload path, as the paper does: both systems
/// keep parameters wherever their strategy dictates, but the measured
/// difference is ZeRO-Offload's single-PCIe gradient transfer versus
/// ZeRO-Infinity's bandwidth-centric transfer across all links.
pub fn fig6c() -> Vec<Fig6cRow> {
    let opts = SimOptions { overlap: false, act_ckpt_offload: false };
    [4u64, 16, 32, 64]
        .into_iter()
        .map(|gpus| {
            let cluster = if gpus < 16 {
                ClusterSpec { gpus_per_node: gpus, ..ClusterSpec::dgx2(1) }
            } else {
                ClusterSpec::dgx2(gpus / 16)
            };
            let m = fig6c_model(2.0);
            let grad_bytes = 2.0 * m.params as f64;
            // Backward compute is ~2/3 of the iteration's compute.
            let compute =
                2.0 / 3.0 * iteration_time(SimStrategy::Zero3, &cluster, &m, &opts).compute;
            let off = compute + grad_bytes / cluster.pcie_single;
            let inf =
                compute + grad_bytes / (gpus as f64 * cluster.cpu_bw_per_gpu);
            Fig6cRow { gpus, offload_bwd_s: off, infinity_bwd_s: inf, speedup: off / inf }
        })
        .collect()
}

/// Fig. 6d row: throughput with and without communication overlap.
#[derive(Debug, Clone)]
pub struct Fig6dRow {
    /// Batch size per GPU.
    pub batch_per_gpu: f64,
    /// TFlops/GPU with prefetch + overlap.
    pub with_overlap: f64,
    /// TFlops/GPU without.
    pub without_overlap: f64,
    /// Relative speedup.
    pub speedup: f64,
}

/// Fig. 6d: prefetch/overlap ablation, 8B model on 64 GPUs.
pub fn fig6d() -> Vec<Fig6dRow> {
    let cluster = ClusterSpec::dgx2(4);
    [2.0f64, 4.0, 8.0, 10.0, 14.0, 16.0]
        .into_iter()
        .map(|bsz| {
            let m = fig6c_model(bsz);
            let on = iteration_time(
                SimStrategy::InfinityNvme,
                &cluster,
                &m,
                &SimOptions { overlap: true, act_ckpt_offload: false },
            );
            let off = iteration_time(
                SimStrategy::InfinityNvme,
                &cluster,
                &m,
                &SimOptions { overlap: false, act_ckpt_offload: false },
            );
            Fig6dRow {
                batch_per_gpu: bsz,
                with_overlap: on.tflops_per_gpu,
                without_overlap: off.tflops_per_gpu,
                speedup: on.tflops_per_gpu / off.tflops_per_gpu,
            }
        })
        .collect()
}

/// Fig. 6e row: activation checkpoint offload overhead at a hidden size.
#[derive(Debug, Clone)]
pub struct Fig6eRow {
    /// Hidden dimension.
    pub hidden: u64,
    /// Iteration time ratio (offload / no offload); 1.0 = free.
    pub slowdown: f64,
}

/// Fig. 6e: activation checkpoint CPU offload overhead vs hidden size.
pub fn fig6e() -> Vec<Fig6eRow> {
    let cluster = ClusterSpec::dgx2(2);
    [2048u64, 8192, 16384, 32768, 65536]
        .into_iter()
        .map(|hidden| {
            let m = fig6e_model(hidden, 4.0);
            let with = iteration_time(
                SimStrategy::InfinityCpu,
                &cluster,
                &m,
                &SimOptions { overlap: false, act_ckpt_offload: true },
            );
            let without = iteration_time(
                SimStrategy::InfinityCpu,
                &cluster,
                &m,
                &SimOptions { overlap: false, act_ckpt_offload: false },
            );
            Fig6eRow { hidden, slowdown: with.total / without.total }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_leap_is_about_50x() {
        let rows = fig1();
        assert_eq!(rows.len(), 2);
        let threed = rows[0].max_params as f64;
        let inf = rows[1].max_params as f64;
        let leap = inf / threed;
        assert!((20.0..100.0).contains(&leap), "leap {leap}x (paper ~50x)");
    }

    #[test]
    fn fig5a_infinity_runs_where_3d_ooms() {
        let rows = fig5a();
        // 500B: both fit.
        assert!(rows[0].fits && rows[1].fits);
        // 5T and beyond: 3D parallelism OOMs, ZeRO-Infinity still trains.
        for pair in rows.chunks(2).skip(2) {
            assert!(pair[0].fits, "{} must fit under Infinity", pair[0].model);
            assert!(!pair[1].fits, "{} must OOM under 3D", pair[1].model);
        }
    }

    #[test]
    fn fig5a_peak_throughput_matches_paper_scale() {
        // Paper: ZeRO-Infinity sustains over 25 pflops on 512 GPUs.
        let rows = fig5a();
        let best = rows
            .iter()
            .filter(|r| r.strategy == SimStrategy::InfinityNvme)
            .map(|r| r.pflops_total)
            .fold(0.0f64, f64::max);
        assert!(best > 20.0, "peak {best} pflops (paper > 25)");
    }

    #[test]
    fn fig5b_is_superlinear() {
        let rows = fig5b();
        for w in rows.windows(2) {
            assert!(
                w[1].tflops_per_gpu > w[0].tflops_per_gpu,
                "per-GPU throughput must grow with nodes"
            );
        }
    }

    #[test]
    fn fig5c_all_single_node_configs_run() {
        let rows = fig5c();
        assert_eq!(rows.len(), 5);
        assert!(rows.iter().all(|r| r.fits), "every Fig. 5c config must fit on one node");
        // 100B stays above 30 TFlops (paper: >40 up to 100B).
        assert!(rows[2].tflops_per_gpu > 30.0);
    }

    #[test]
    fn fig6a_is_monotone_ladder() {
        let rows = fig6a();
        assert_eq!(rows.len(), 7);
        for w in rows.windows(2) {
            assert!(
                w[1].max_params >= w[0].max_params,
                "{:?} ({}) < {:?} ({})",
                w[1].strategy,
                w[1].max_params,
                w[0].strategy,
                w[0].max_params
            );
        }
    }

    #[test]
    fn fig6c_speedup_grows() {
        let rows = fig6c();
        for w in rows.windows(2) {
            assert!(w[1].speedup >= w[0].speedup);
        }
        assert!(rows.last().unwrap().speedup > 1.5);
    }

    #[test]
    fn fig6d_speedup_diminishes_with_batch() {
        let rows = fig6d();
        assert!(rows[0].speedup > rows.last().unwrap().speedup);
        assert!(rows[0].speedup > 1.3);
    }

    #[test]
    fn fig6e_overhead_bounded_and_vanishing() {
        let rows = fig6e();
        assert!(rows[0].slowdown > 1.0 && rows[0].slowdown < 1.6);
        assert!(rows.last().unwrap().slowdown < 1.05);
        for w in rows.windows(2) {
            assert!(w[1].slowdown <= w[0].slowdown + 1e-9);
        }
    }
}

/// Prefetch-depth sweep on the discrete pipeline simulator: the Fig. 6d
/// mechanism derived from first principles rather than the analytic
/// `max()` model. Uses an 8B-like module sequence on DGX-2 channel
/// bandwidths.
pub fn fig6d_pipeline_depths() -> Vec<(usize, f64)> {
    use crate::pipeline::{prefetch_speedup, ModuleCost};
    let cluster = ClusterSpec::dgx2(4);
    // Small-batch regime (gradient accumulation with micro-batch 0.5):
    // the setting where Fig. 6d shows prefetching matters most.
    let m = fig6c_model(0.5);
    let layers = m.layers as usize;
    let layer_params = m.params as f64 / layers as f64;
    // nc/cg move this rank's shard; the allgather delivers the full layer.
    let shard_bytes = 2.0 * layer_params / cluster.total_gpus() as f64;
    let full_bytes = 2.0 * layer_params;
    let per_layer_compute =
        8.0 * m.batch_per_gpu * m.seq as f64 * layer_params / (cluster.gpu_peak * 0.75);
    let cost = ModuleCost {
        nc: shard_bytes / cluster.nvme_bw_per_gpu,
        cg: shard_bytes / cluster.cpu_bw_per_gpu,
        gg: full_bytes / cluster.gg_bw,
        compute: per_layer_compute,
    };
    let modules = vec![cost; layers];
    [0usize, 1, 2, 3, 4]
        .into_iter()
        .map(|d| (d, prefetch_speedup(&modules, d)))
        .collect()
}

#[cfg(test)]
mod pipeline_figure_tests {
    use super::*;

    #[test]
    fn pipeline_speedup_monotone_in_depth() {
        let rows = fig6d_pipeline_depths();
        assert_eq!(rows[0], (0, 1.0));
        for w in rows.windows(2) {
            assert!(w[1].1 >= w[0].1 - 1e-9, "{rows:?}");
        }
        // Depth 3 (covering the three hops) yields a real speedup.
        assert!(rows[3].1 > 1.2, "{rows:?}");
    }
}
