//! Deterministic fault injection for storage backends.
//!
//! [`FaultyBackend`] wraps any [`StorageBackend`] and injects faults
//! according to a shared [`FaultPlan`]. Plans combine two layers:
//!
//! * **Scripted** faults — "fail the next N reads", "tear the next
//!   write", "kill the device now" — consumed in submission order, for
//!   tests that need an exact failure at an exact point.
//! * **Probabilistic** faults — a seeded xorshift stream rolls each
//!   operation against a [`FaultProfile`], for chaos soaks. The stream
//!   is deterministic per *operation sequence*; with a multi-worker
//!   engine the interleaving (and hence which op draws which roll)
//!   varies, but the fault *rates* and the recoverability guarantees do
//!   not.
//!
//! Injected fault taxonomy (see DESIGN.md, "Failure model & recovery"):
//!
//! | fault          | effect                                   | class     |
//! |----------------|------------------------------------------|-----------|
//! | transient I/O  | op fails, device state untouched         | transient |
//! | latency spike  | op delayed, then runs normally           | benign    |
//! | torn write     | prefix persisted, op reports failure     | transient |
//! | read bit-flip  | buffer corrupted, op reports success     | silent    |
//! | device death   | every op fails until [`FaultPlan::revive`] | permanent |
//!
//! Torn writes are recoverable by retrying the write (a rewrite of the
//! full extent restores consistency). Read bit-flips are recoverable by
//! checksum-verified re-reads (the device still holds clean data). Both
//! therefore count as transient for the retry layer; only device death
//! is terminal.

use zi_sync::Arc;
use std::time::Duration;

use zi_sync::Mutex;
use zi_types::{Error, Result};

use crate::backend::StorageBackend;

/// Probabilities for the seeded chaos layer of a [`FaultPlan`].
///
/// All probabilities are per-operation and independently rolled.
#[derive(Debug, Clone, Copy)]
pub struct FaultProfile {
    /// Seed for the deterministic fault stream.
    pub seed: u64,
    /// Probability a read fails with a transient I/O error.
    pub read_fault: f64,
    /// Probability a write fails with a transient I/O error (nothing
    /// persisted).
    pub write_fault: f64,
    /// Probability a write is torn: a strict prefix is persisted and the
    /// operation reports a transient failure.
    pub torn_write: f64,
    /// Probability an operation is delayed by [`FaultProfile::spike`].
    pub latency_spike: f64,
    /// Duration of an injected latency spike.
    pub spike: Duration,
}

impl FaultProfile {
    /// Profile that injects nothing (all probabilities zero).
    pub fn quiet(seed: u64) -> Self {
        FaultProfile {
            seed,
            read_fault: 0.0,
            write_fault: 0.0,
            torn_write: 0.0,
            latency_spike: 0.0,
            spike: Duration::ZERO,
        }
    }
}

/// Counts of faults a plan has injected so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InjectedStats {
    /// Reads failed with a transient error.
    pub read_faults: u64,
    /// Writes failed with a transient error (nothing persisted).
    pub write_faults: u64,
    /// Writes torn (prefix persisted, failure reported).
    pub torn_writes: u64,
    /// Reads whose returned buffer had a bit flipped.
    pub bitflips: u64,
    /// Operations delayed by an injected latency spike.
    pub latency_spikes: u64,
    /// Operations rejected because the device was dead.
    pub dead_rejections: u64,
}

impl InjectedStats {
    /// Total number of injected faults of any kind (spikes excluded —
    /// they delay but do not fail).
    pub fn total_faults(&self) -> u64 {
        self.read_faults + self.write_faults + self.torn_writes + self.bitflips
            + self.dead_rejections
    }
}

#[derive(Default)]
struct PlanState {
    fail_next_reads: u32,
    fail_next_writes: u32,
    torn_next_writes: u32,
    bitflip_next_reads: u32,
    delay_next_ops: u32,
    scripted_delay: Duration,
    dead: bool,
    /// Scripted delayed death: the device dies right before judging the
    /// (n+1)-th data operation from now.
    ops_until_death: Option<u64>,
    /// Data operations (reads + writes) judged so far.
    ops_seen: u64,
    profile: Option<FaultProfile>,
    rng: u64,
    injected: InjectedStats,
}

impl PlanState {
    /// Count a data operation and trigger a scripted delayed death when
    /// its countdown expires. Called at the top of every read/write judge.
    fn tick(&mut self) {
        self.ops_seen += 1;
        if let Some(n) = self.ops_until_death {
            if n == 0 {
                self.dead = true;
                self.ops_until_death = None;
            } else {
                self.ops_until_death = Some(n - 1);
            }
        }
    }

    /// xorshift64* — deterministic per draw sequence.
    fn next_u64(&mut self) -> u64 {
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn roll(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        // 53 bits of the product give a uniform draw in [0, 1).
        let draw = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        draw < p
    }
}

/// What the plan decided to do with one operation.
enum Verdict {
    /// Proceed against the inner backend unmodified.
    Proceed,
    /// Fail with a transient I/O error without touching the device.
    FailTransient(&'static str),
    /// The device is dead: fail permanently.
    Dead,
    /// Write only the first `prefix` bytes, then report a transient
    /// failure (torn write).
    Torn { prefix: usize },
    /// Perform the read, then flip bit `bit` of byte `byte` in the
    /// returned buffer (silent corruption).
    BitFlip { byte: usize, bit: u8 },
}

/// Shared, cloneable handle to a fault-injection plan.
///
/// Tests hold one clone to script faults mid-run while a
/// [`FaultyBackend`] holds another. The default plan injects nothing.
#[derive(Clone, Default)]
pub struct FaultPlan {
    inner: Arc<Mutex<PlanState>>,
}

impl FaultPlan {
    /// Plan that injects nothing until scripted to.
    pub fn new() -> Self {
        Self::default()
    }

    /// Plan whose every operation is rolled against `profile`, on top of
    /// any scripted faults (scripted faults take precedence).
    pub fn probabilistic(profile: FaultProfile) -> Self {
        let plan = Self::new();
        {
            let mut st = plan.inner.lock();
            // xorshift must not start at 0; fold the seed into a fixed
            // odd constant so seed 0 is usable.
            st.rng = profile.seed ^ 0x9e37_79b9_7f4a_7c15;
            st.profile = Some(profile);
        }
        plan
    }

    /// Fail the next `n` reads with a transient I/O error.
    pub fn fail_next_reads(&self, n: u32) {
        self.inner.lock().fail_next_reads = n;
    }

    /// Fail the next `n` writes with a transient I/O error (nothing is
    /// persisted).
    pub fn fail_next_writes(&self, n: u32) {
        self.inner.lock().fail_next_writes = n;
    }

    /// Tear the next `n` writes: persist a strict prefix, then report a
    /// transient failure.
    pub fn torn_next_writes(&self, n: u32) {
        self.inner.lock().torn_next_writes = n;
    }

    /// Silently flip one bit in the buffers returned by the next `n`
    /// reads (the device data stays clean — a re-read returns good
    /// bytes, modelling a transfer-path upset rather than media decay).
    pub fn bitflip_next_reads(&self, n: u32) {
        self.inner.lock().bitflip_next_reads = n;
    }

    /// Delay the next `n` operations by `by` before executing them.
    pub fn delay_next_ops(&self, n: u32, by: Duration) {
        let mut st = self.inner.lock();
        st.delay_next_ops = n;
        st.scripted_delay = by;
    }

    /// Declare the device dead: every subsequent operation (including
    /// `sync` and `len`) fails with [`Error::DeviceFailed`] until
    /// [`Self::revive`].
    pub fn kill(&self) {
        self.inner.lock().dead = true;
    }

    /// Let the next `n` data operations (reads + writes) through, then
    /// kill the device. Deterministic mid-run death for recovery tests:
    /// unlike [`Self::kill`] from another thread, the failure point is an
    /// exact operation count, not a race.
    pub fn kill_after_ops(&self, n: u64) {
        self.inner.lock().ops_until_death = Some(n);
    }

    /// Data operations (reads + writes) judged so far, faulty or not.
    /// Lets a fault-free calibration run measure how many operations a
    /// workload performs, so [`Self::kill_after_ops`] can place death at
    /// a chosen fraction of it.
    pub fn ops_seen(&self) -> u64 {
        self.inner.lock().ops_seen
    }

    /// Bring a killed device back (the next operations run normally).
    pub fn revive(&self) {
        self.inner.lock().dead = false;
    }

    /// True if the plan currently rejects everything.
    pub fn is_dead(&self) -> bool {
        self.inner.lock().dead
    }

    /// Error (and count a rejection) if the device is dead.
    fn check_alive(&self) -> Result<()> {
        let mut st = self.inner.lock();
        if st.dead {
            st.injected.dead_rejections += 1;
            return Err(dead());
        }
        Ok(())
    }

    /// Snapshot of the faults injected so far.
    pub fn injected(&self) -> InjectedStats {
        self.inner.lock().injected
    }

    /// Decide the fate of one read of `len` bytes. Returns the verdict
    /// plus an optional injected delay (applied by the caller *outside*
    /// the plan lock).
    fn judge_read(&self, len: usize) -> (Verdict, Option<Duration>) {
        let mut st = self.inner.lock();
        st.tick();
        if st.dead {
            st.injected.dead_rejections += 1;
            return (Verdict::Dead, None);
        }
        let delay = Self::take_delay(&mut st);
        if st.fail_next_reads > 0 {
            st.fail_next_reads -= 1;
            st.injected.read_faults += 1;
            return (Verdict::FailTransient("injected read failure"), delay);
        }
        if st.bitflip_next_reads > 0 && len > 0 {
            st.bitflip_next_reads -= 1;
            st.injected.bitflips += 1;
            let byte = (st.next_u64() as usize) % len;
            let bit = (st.next_u64() % 8) as u8;
            return (Verdict::BitFlip { byte, bit }, delay);
        }
        if let Some(p) = st.profile {
            if st.roll(p.read_fault) {
                st.injected.read_faults += 1;
                return (Verdict::FailTransient("injected read failure"), delay);
            }
        }
        (Verdict::Proceed, delay)
    }

    /// Decide the fate of one write of `len` bytes.
    fn judge_write(&self, len: usize) -> (Verdict, Option<Duration>) {
        let mut st = self.inner.lock();
        st.tick();
        if st.dead {
            st.injected.dead_rejections += 1;
            return (Verdict::Dead, None);
        }
        let delay = Self::take_delay(&mut st);
        if st.fail_next_writes > 0 {
            st.fail_next_writes -= 1;
            st.injected.write_faults += 1;
            return (Verdict::FailTransient("injected write failure"), delay);
        }
        if st.torn_next_writes > 0 && len > 1 {
            st.torn_next_writes -= 1;
            st.injected.torn_writes += 1;
            let prefix = 1 + (st.next_u64() as usize) % (len - 1);
            return (Verdict::Torn { prefix }, delay);
        }
        if let Some(p) = st.profile {
            if st.roll(p.write_fault) {
                st.injected.write_faults += 1;
                return (Verdict::FailTransient("injected write failure"), delay);
            }
            if len > 1 && st.roll(p.torn_write) {
                st.injected.torn_writes += 1;
                let prefix = 1 + (st.next_u64() as usize) % (len - 1);
                return (Verdict::Torn { prefix }, delay);
            }
        }
        (Verdict::Proceed, delay)
    }

    fn take_delay(st: &mut PlanState) -> Option<Duration> {
        if st.delay_next_ops > 0 {
            st.delay_next_ops -= 1;
            st.injected.latency_spikes += 1;
            return Some(st.scripted_delay);
        }
        if let Some(p) = st.profile {
            if st.roll(p.latency_spike) {
                st.injected.latency_spikes += 1;
                return Some(p.spike);
            }
        }
        None
    }
}

fn transient(msg: &'static str) -> Error {
    Error::Io(std::io::Error::other(msg))
}

fn dead() -> Error {
    Error::DeviceFailed("fault plan declared device dead".into())
}

/// Storage backend wrapper that injects faults per a [`FaultPlan`].
pub struct FaultyBackend<B> {
    inner: B,
    plan: FaultPlan,
}

impl<B: StorageBackend> FaultyBackend<B> {
    /// Wrap `inner`, injecting faults according to `plan`.
    pub fn new(inner: B, plan: FaultPlan) -> Self {
        FaultyBackend { inner, plan }
    }

    /// The plan driving this backend (clone it to script faults).
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &B {
        &self.inner
    }
}

impl<B: StorageBackend> StorageBackend for FaultyBackend<B> {
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<()> {
        let (verdict, delay) = self.plan.judge_read(buf.len());
        if let Some(d) = delay {
            zi_sync::thread::sleep(d);
        }
        match verdict {
            Verdict::Dead => Err(dead()),
            Verdict::FailTransient(msg) => Err(transient(msg)),
            Verdict::Proceed => self.inner.read_at(offset, buf),
            Verdict::BitFlip { byte, bit } => {
                self.inner.read_at(offset, buf)?;
                buf[byte] ^= 1 << bit;
                Ok(())
            }
            Verdict::Torn { .. } => unreachable!("torn verdicts only for writes"),
        }
    }

    fn write_at(&self, offset: u64, data: &[u8]) -> Result<()> {
        let (verdict, delay) = self.plan.judge_write(data.len());
        if let Some(d) = delay {
            zi_sync::thread::sleep(d);
        }
        match verdict {
            Verdict::Dead => Err(dead()),
            Verdict::FailTransient(msg) => Err(transient(msg)),
            Verdict::Proceed => self.inner.write_at(offset, data),
            Verdict::Torn { prefix } => {
                self.inner.write_at(offset, &data[..prefix])?;
                Err(transient("injected torn write"))
            }
            Verdict::BitFlip { .. } => unreachable!("bitflip verdicts only for reads"),
        }
    }

    fn sync(&self) -> Result<()> {
        self.plan.check_alive()?;
        self.inner.sync()
    }

    fn len(&self) -> Result<u64> {
        self.plan.check_alive()?;
        self.inner.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemBackend;

    fn faulty() -> (FaultPlan, FaultyBackend<MemBackend>) {
        let plan = FaultPlan::new();
        (plan.clone(), FaultyBackend::new(MemBackend::new(), plan))
    }

    #[test]
    fn quiet_plan_is_a_pass_through() {
        let (plan, b) = faulty();
        b.write_at(8, &[1, 2, 3]).unwrap();
        let mut buf = [0u8; 3];
        b.read_at(8, &mut buf).unwrap();
        assert_eq!(buf, [1, 2, 3]);
        assert_eq!(b.len().unwrap(), 11);
        assert_eq!(plan.injected(), InjectedStats::default());
    }

    #[test]
    fn scripted_read_failures_then_recovery() {
        let (plan, b) = faulty();
        b.write_at(0, &[9; 4]).unwrap();
        plan.fail_next_reads(2);
        let mut buf = [0u8; 4];
        for _ in 0..2 {
            let err = b.read_at(0, &mut buf).unwrap_err();
            assert!(err.is_transient());
        }
        b.read_at(0, &mut buf).unwrap();
        assert_eq!(buf, [9; 4]);
        assert_eq!(plan.injected().read_faults, 2);
    }

    #[test]
    fn torn_write_persists_a_strict_prefix() {
        let (plan, b) = faulty();
        plan.torn_next_writes(1);
        let err = b.write_at(0, &[5; 64]).unwrap_err();
        assert!(err.is_transient());
        let torn_len = b.len().unwrap();
        assert!((1..64).contains(&torn_len), "torn length {torn_len}");
        // Retrying the write restores full consistency.
        b.write_at(0, &[5; 64]).unwrap();
        let mut buf = [0u8; 64];
        b.read_at(0, &mut buf).unwrap();
        assert_eq!(buf, [5u8; 64]);
        assert_eq!(plan.injected().torn_writes, 1);
    }

    #[test]
    fn bitflip_corrupts_exactly_one_bit_and_only_once() {
        let (plan, b) = faulty();
        let clean = vec![0xa5u8; 32];
        b.write_at(0, &clean).unwrap();
        plan.bitflip_next_reads(1);
        let mut buf = vec![0u8; 32];
        b.read_at(0, &mut buf).unwrap();
        let flipped: u32 =
            buf.iter().zip(&clean).map(|(a, b)| (a ^ b).count_ones()).sum();
        assert_eq!(flipped, 1, "exactly one bit differs");
        // Device data is clean: the next read is perfect.
        b.read_at(0, &mut buf).unwrap();
        assert_eq!(buf, clean);
        assert_eq!(plan.injected().bitflips, 1);
    }

    #[test]
    fn dead_device_rejects_everything_until_revived() {
        let (plan, b) = faulty();
        b.write_at(0, &[1]).unwrap();
        plan.kill();
        let mut buf = [0u8; 1];
        assert!(b.read_at(0, &mut buf).unwrap_err().is_device_failure());
        assert!(b.write_at(0, &[2]).unwrap_err().is_device_failure());
        assert!(b.sync().unwrap_err().is_device_failure());
        assert!(b.len().unwrap_err().is_device_failure());
        plan.revive();
        b.read_at(0, &mut buf).unwrap();
        assert_eq!(buf, [1]);
        assert!(plan.injected().dead_rejections >= 4);
    }

    #[test]
    fn delayed_death_fires_at_an_exact_operation_count() {
        let (plan, b) = faulty();
        plan.kill_after_ops(3);
        b.write_at(0, &[1; 4]).unwrap();
        let mut buf = [0u8; 4];
        b.read_at(0, &mut buf).unwrap();
        b.write_at(4, &[2; 4]).unwrap();
        // Fourth data op: the device is now dead.
        assert!(b.read_at(0, &mut buf).unwrap_err().is_device_failure());
        assert!(plan.is_dead());
        assert_eq!(plan.ops_seen(), 4);
    }

    #[test]
    fn probabilistic_plan_is_deterministic_for_a_seed() {
        let run = |seed: u64| {
            let plan = FaultPlan::probabilistic(FaultProfile {
                read_fault: 0.3,
                write_fault: 0.2,
                ..FaultProfile::quiet(seed)
            });
            let b = FaultyBackend::new(MemBackend::new(), plan.clone());
            let mut outcomes = Vec::new();
            for i in 0..200u64 {
                outcomes.push(b.write_at(i * 4, &[i as u8; 4]).is_ok());
                let mut buf = [0u8; 4];
                outcomes.push(b.read_at(0, &mut buf).is_ok());
            }
            (outcomes, plan.injected())
        };
        let (o1, s1) = run(42);
        let (o2, s2) = run(42);
        assert_eq!(o1, o2);
        assert_eq!(s1, s2);
        assert!(s1.read_faults > 0 && s1.write_faults > 0);
        let (o3, _) = run(43);
        assert_ne!(o1, o3, "different seeds give different fault streams");
    }

    #[test]
    fn latency_spike_delays_but_succeeds() {
        let (plan, b) = faulty();
        b.write_at(0, &[7; 8]).unwrap();
        plan.delay_next_ops(1, Duration::from_millis(20));
        let start = zi_sync::time::Instant::now();
        let mut buf = [0u8; 8];
        b.read_at(0, &mut buf).unwrap();
        assert!(start.elapsed() >= Duration::from_millis(15));
        assert_eq!(buf, [7; 8]);
        assert_eq!(plan.injected().latency_spikes, 1);
    }
}
