//! Crash-consistent, versioned checkpoint store on a [`StorageBackend`].
//!
//! Real elastic training (DeepSpeed's constant checkpointing lineage)
//! needs checkpoints that survive the very failure they exist for: a
//! rank can die *during* a save, tearing the write. This store makes a
//! torn save invisible instead of fatal:
//!
//! * **Versioned slots** — each rank owns `slots_per_rank` fixed-size
//!   slots; version `v` lands in slot `v % slots_per_rank`, so a save
//!   never overwrites the most recent *other* version. With ≥ 2 slots a
//!   torn save can only destroy the oldest rotation, never the last
//!   durable state.
//! * **Atomic publish** — a slot's 64-byte CRC32-C manifest is
//!   invalidated (zeroed + synced) *before* the payload is written and
//!   rewritten (+ synced) only *after* the payload is durable. The
//!   manifest write is the commit point; a crash at any other moment
//!   leaves a slot that scans as empty, not as garbage.
//! * **Latest-complete-wins recovery** — [`CheckpointStore::latest_complete`]
//!   returns the newest version for which *every* rank has a valid
//!   manifest **and** a payload whose CRC32-C matches. A version any rank
//!   failed to finish is simply not offered for recovery.
//!
//! Saves can also be queued on a background writer
//! ([`CheckpointStore::save_async`]) — the same bounded write-behind
//! discipline the optimizer step uses for NVMe flushes — so periodic
//! checkpointing stays off the training step's critical path;
//! [`CheckpointStore::drain`] is the durability barrier that surfaces
//! any background error.

use zi_sync::Arc;

use zi_sync::channel::{unbounded, Sender};
use zi_sync::thread::JoinHandle;
use zi_sync::{Condvar, Mutex};
use zi_types::{Error, Result};

use crate::backend::StorageBackend;
use crate::checksum::crc32;

/// Superblock magic (store identity), at device offset 0.
const SUPER_MAGIC: &[u8; 8] = b"ZICKPST1";
/// Per-slot manifest magic.
const MANIFEST_MAGIC: &[u8; 8] = b"ZICKPMAN";
/// On-disk format version of the store layout.
pub const STORE_FORMAT: u8 = 1;
/// Superblock and manifest both occupy one fixed-size header block.
const HEADER_LEN: u64 = 64;
/// Slot capacity = first payload size × this, so checkpoints can grow
/// moderately (fp16→fp32 promotion, a few extra records) without a new
/// store.
const CAPACITY_HEADROOM: u64 = 4;
/// Minimum slot capacity.
const MIN_CAPACITY: u64 = 4096;
/// Background saves in flight before `save_async` blocks (write-behind
/// window).
const ASYNC_WINDOW: usize = 4;

/// Counters for observability and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Completed synchronous + background saves.
    pub saves: u64,
    /// Saves that went through the background writer.
    pub async_saves: u64,
    /// Successful loads.
    pub loads: u64,
    /// Slots skipped during scans because their manifest or payload
    /// failed validation (torn or partial saves made invisible).
    pub invalid_slots_skipped: u64,
}

struct CoreState {
    /// Fixed at the first save (or by `open`); `None` until then.
    slot_capacity: Option<u64>,
    pending: usize,
    first_err: Option<Error>,
    stats: StoreStats,
}

struct StoreCore {
    backend: Arc<dyn StorageBackend>,
    ranks: u32,
    slots_per_rank: u32,
    state: Mutex<CoreState>,
    cv: Condvar,
    /// Checkpoint-category spans for every save/load, plus payload-byte
    /// counters.
    tracer: zi_trace::Tracer,
}

impl StoreCore {
    fn slot_of(&self, version: u64) -> u64 {
        version % self.slots_per_rank as u64
    }

    fn slot_offset(&self, capacity: u64, rank: u32, slot: u64) -> u64 {
        HEADER_LEN
            + (rank as u64 * self.slots_per_rank as u64 + slot) * (HEADER_LEN + capacity)
    }

    fn write_superblock(&self, capacity: u64) -> Result<()> {
        let mut sb = [0u8; HEADER_LEN as usize];
        sb[..8].copy_from_slice(SUPER_MAGIC);
        sb[8] = STORE_FORMAT;
        sb[9..13].copy_from_slice(&self.ranks.to_le_bytes());
        sb[13..17].copy_from_slice(&self.slots_per_rank.to_le_bytes());
        sb[17..25].copy_from_slice(&capacity.to_le_bytes());
        let crc = crc32(&sb[..25]);
        sb[25..29].copy_from_slice(&crc.to_le_bytes());
        self.backend.write_at(0, &sb)?;
        self.backend.sync()
    }

    /// Fix the slot capacity on first use and persist the superblock.
    fn ensure_layout(&self, payload_len: u64) -> Result<u64> {
        let mut st = self.state.lock();
        if let Some(cap) = st.slot_capacity {
            if payload_len > cap {
                return Err(Error::InvalidArgument(format!(
                    "checkpoint payload of {payload_len} B exceeds slot capacity {cap} B"
                )));
            }
            return Ok(cap);
        }
        let cap = (payload_len.saturating_mul(CAPACITY_HEADROOM)).max(MIN_CAPACITY);
        self.write_superblock(cap)?;
        st.slot_capacity = Some(cap);
        Ok(cap)
    }

    fn encode_manifest(version: u64, rank: u32, payload: &[u8]) -> [u8; HEADER_LEN as usize] {
        let mut m = [0u8; HEADER_LEN as usize];
        m[..8].copy_from_slice(MANIFEST_MAGIC);
        m[8..16].copy_from_slice(&version.to_le_bytes());
        m[16..24].copy_from_slice(&(rank as u64).to_le_bytes());
        m[24..32].copy_from_slice(&(payload.len() as u64).to_le_bytes());
        m[32..36].copy_from_slice(&crc32(payload).to_le_bytes());
        let crc = crc32(&m[..36]);
        m[36..40].copy_from_slice(&crc.to_le_bytes());
        m
    }

    /// Parse a manifest block. `None` means "slot is empty / torn", which
    /// scans treat as absence, never as an error.
    fn decode_manifest(m: &[u8]) -> Option<(u64, u64, u64, u32)> {
        if &m[..8] != MANIFEST_MAGIC {
            return None;
        }
        let stored = u32::from_le_bytes(m[36..40].try_into().ok()?);
        if crc32(&m[..36]) != stored {
            return None;
        }
        let version = u64::from_le_bytes(m[8..16].try_into().ok()?);
        let rank = u64::from_le_bytes(m[16..24].try_into().ok()?);
        let len = u64::from_le_bytes(m[24..32].try_into().ok()?);
        let payload_crc = u32::from_le_bytes(m[32..36].try_into().ok()?);
        Some((version, rank, len, payload_crc))
    }

    /// The crash-consistent save protocol: invalidate → payload → sync →
    /// publish manifest → sync. Interrupt it anywhere and the slot scans
    /// as empty; complete it and the version is durable.
    fn save_sync(&self, rank: u32, version: u64, payload: &[u8]) -> Result<()> {
        if rank >= self.ranks {
            return Err(Error::InvalidArgument(format!(
                "rank {rank} out of store's {} ranks",
                self.ranks
            )));
        }
        let cap = self.ensure_layout(payload.len() as u64)?;
        if payload.len() as u64 > cap {
            return Err(Error::InvalidArgument(format!(
                "checkpoint payload of {} B exceeds slot capacity {cap} B",
                payload.len()
            )));
        }
        let mut span = self.tracer.span(zi_trace::Category::Checkpoint, "ckpt.save");
        span.set_bytes(payload.len() as u64);
        span.set_id(version);
        self.tracer.count(zi_trace::Counter::CkptBytes, payload.len() as u64);
        let off = self.slot_offset(cap, rank, self.slot_of(version));
        // 1. Invalidate: whatever version lived here is now officially
        //    gone before one payload byte is overwritten.
        self.backend.write_at(off, &[0u8; HEADER_LEN as usize])?;
        self.backend.sync()?;
        // 2. Payload, made durable before publication.
        self.backend.write_at(off + HEADER_LEN, payload)?;
        self.backend.sync()?;
        // 3. Commit point: the manifest names the version and both CRCs.
        self.backend.write_at(off, &Self::encode_manifest(version, rank, payload))?;
        self.backend.sync()?;
        self.state.lock().stats.saves += 1;
        Ok(())
    }

    /// Read the manifest of (rank, slot) and validate its payload CRC.
    /// Returns the version and payload when both check out.
    fn read_slot(&self, cap: u64, rank: u32, slot: u64) -> Option<(u64, Vec<u8>)> {
        let off = self.slot_offset(cap, rank, slot);
        let mut m = [0u8; HEADER_LEN as usize];
        if self.backend.read_at(off, &mut m).is_err() {
            // Device shorter than the slot region: never written.
            return None;
        }
        let (version, mrank, len, payload_crc) = match Self::decode_manifest(&m) {
            Some(v) => v,
            None => {
                self.state.lock().stats.invalid_slots_skipped += 1;
                return None;
            }
        };
        if mrank != rank as u64 || len > cap {
            self.state.lock().stats.invalid_slots_skipped += 1;
            return None;
        }
        let mut payload = vec![0u8; len as usize];
        if self.backend.read_at(off + HEADER_LEN, &mut payload).is_err()
            || crc32(&payload) != payload_crc
        {
            self.state.lock().stats.invalid_slots_skipped += 1;
            return None;
        }
        Some((version, payload))
    }

    fn capacity(&self) -> Result<u64> {
        self.state.lock().slot_capacity.ok_or_else(|| {
            Error::InvalidArgument("checkpoint store is empty (no save yet)".into())
        })
    }
}

/// Background save job.
struct Job {
    rank: u32,
    version: u64,
    payload: Vec<u8>,
}

struct Inner {
    core: Arc<StoreCore>,
    tx: Option<Sender<Job>>,
    worker: Mutex<Option<JoinHandle<()>>>,
}

impl Drop for Inner {
    fn drop(&mut self) {
        // Closing the channel stops the worker after it drains the queue.
        self.tx.take();
        if let Some(h) = self.worker.lock().take() {
            let _ = h.join();
        }
    }
}

/// Shared, cloneable handle to a checkpoint store. See the module docs
/// for the crash-consistency protocol.
#[derive(Clone)]
pub struct CheckpointStore {
    inner: Arc<Inner>,
}

impl CheckpointStore {
    /// Create a store for `ranks` ranks with `slots_per_rank` rotating
    /// slots each (≥ 2 recommended: a torn save can then only destroy an
    /// old rotation). Slot capacity is fixed by the first save. Nothing
    /// is written until then.
    pub fn new(
        backend: Arc<dyn StorageBackend>,
        ranks: usize,
        slots_per_rank: usize,
    ) -> Result<Self> {
        Self::with_tracer(backend, ranks, slots_per_rank, zi_trace::Tracer::new())
    }

    /// [`CheckpointStore::new`] recording its Checkpoint spans and
    /// payload counters into an externally owned tracer.
    pub fn with_tracer(
        backend: Arc<dyn StorageBackend>,
        ranks: usize,
        slots_per_rank: usize,
        tracer: zi_trace::Tracer,
    ) -> Result<Self> {
        if ranks == 0 || slots_per_rank == 0 {
            return Err(Error::InvalidArgument(
                "checkpoint store needs ≥1 rank and ≥1 slot per rank".into(),
            ));
        }
        let core = Arc::new(StoreCore {
            backend,
            ranks: ranks as u32,
            slots_per_rank: slots_per_rank as u32,
            state: Mutex::new(CoreState {
                slot_capacity: None,
                pending: 0,
                first_err: None,
                stats: StoreStats::default(),
            }),
            cv: Condvar::new(),
            tracer,
        });
        let (tx, rx) = unbounded::<Job>();
        let wcore = Arc::clone(&core);
        let worker = zi_sync::thread::Builder::new()
            .name("zi-ckpt-store".into())
            .spawn(move || {
                while let Ok(job) = rx.recv() {
                    // Once a background save fails, later queued saves are
                    // skipped (their version would be newer than the last
                    // good one, and the caller learns the truth at drain).
                    let already_failed = wcore.state.lock().first_err.is_some();
                    let res = if already_failed {
                        Ok(())
                    } else {
                        wcore.save_sync(job.rank, job.version, &job.payload)
                    };
                    let mut st = wcore.state.lock();
                    if let Err(e) = res {
                        if st.first_err.is_none() {
                            st.first_err = Some(e);
                        }
                    }
                    st.pending -= 1;
                    wcore.cv.notify_all();
                }
            })
            .map_err(|e| Error::Internal(format!("spawn checkpoint writer: {e}")))?;
        Ok(CheckpointStore {
            inner: Arc::new(Inner { core, tx: Some(tx), worker: Mutex::new(Some(worker)) }),
        })
    }

    /// Open an existing store by reading its superblock.
    pub fn open(backend: Arc<dyn StorageBackend>) -> Result<Self> {
        let mut sb = [0u8; HEADER_LEN as usize];
        backend.read_at(0, &mut sb).map_err(|_| {
            Error::InvalidArgument("no checkpoint store on this device".into())
        })?;
        if &sb[..8] != SUPER_MAGIC {
            return Err(Error::InvalidArgument("not a checkpoint store".into()));
        }
        if sb[8] != STORE_FORMAT {
            return Err(Error::VersionMismatch {
                context: "checkpoint store superblock".into(),
                found: sb[8] as u32,
                expected: STORE_FORMAT as u32,
            });
        }
        let crc = u32::from_le_bytes(sb[25..29].try_into().expect("4 bytes"));
        if crc32(&sb[..25]) != crc {
            return Err(Error::Corruption {
                context: "checkpoint store superblock".into(),
                expected: crc,
                actual: crc32(&sb[..25]),
            });
        }
        let ranks = u32::from_le_bytes(sb[9..13].try_into().expect("4 bytes"));
        let slots = u32::from_le_bytes(sb[13..17].try_into().expect("4 bytes"));
        let capacity = u64::from_le_bytes(sb[17..25].try_into().expect("8 bytes"));
        if ranks == 0 || slots == 0 || capacity == 0 {
            return Err(Error::InvalidArgument("checkpoint store superblock is degenerate".into()));
        }
        let store = Self::new(backend, ranks as usize, slots as usize)?;
        store.inner.core.state.lock().slot_capacity = Some(capacity);
        Ok(store)
    }

    /// Number of ranks this store was laid out for.
    pub fn ranks(&self) -> usize {
        self.inner.core.ranks as usize
    }

    /// Rotating slots per rank.
    pub fn slots_per_rank(&self) -> usize {
        self.inner.core.slots_per_rank as usize
    }

    /// Counters snapshot.
    pub fn stats(&self) -> StoreStats {
        self.inner.core.state.lock().stats
    }

    /// Durably save `payload` as (rank, version), blocking until the
    /// manifest is published.
    pub fn save(&self, rank: usize, version: u64, payload: &[u8]) -> Result<()> {
        self.inner.core.save_sync(rank as u32, version, payload)
    }

    /// Queue a save on the background writer and return immediately
    /// (bounded: blocks only when [`ASYNC_WINDOW`] saves are already in
    /// flight). Errors surface at the next [`CheckpointStore::drain`].
    pub fn save_async(&self, rank: usize, version: u64, payload: Vec<u8>) -> Result<()> {
        let core = &self.inner.core;
        if rank as u32 >= core.ranks {
            return Err(Error::InvalidArgument(format!(
                "rank {rank} out of store's {} ranks",
                core.ranks
            )));
        }
        {
            let mut st = core.state.lock();
            while st.pending >= ASYNC_WINDOW {
                core.cv.wait(&mut st);
            }
            st.pending += 1;
            st.stats.async_saves += 1;
        }
        let sent = match self.inner.tx.as_ref() {
            Some(tx) => tx.send(Job { rank: rank as u32, version, payload }).is_ok(),
            None => false,
        };
        if !sent {
            // Channel closed: the worker died. Roll back the pending count.
            let mut st = core.state.lock();
            st.pending -= 1;
            core.cv.notify_all();
            return Err(Error::Internal("checkpoint writer thread is gone".into()));
        }
        Ok(())
    }

    /// Wait for every queued background save to complete, then surface
    /// the first error any of them hit (durability barrier).
    pub fn drain(&self) -> Result<()> {
        let core = &self.inner.core;
        let mut st = core.state.lock();
        while st.pending > 0 {
            core.cv.wait(&mut st);
        }
        match st.first_err.take() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Load the payload saved as (rank, version). Fails with a typed
    /// error if that version is gone (rotated away or torn).
    pub fn load(&self, rank: usize, version: u64) -> Result<Vec<u8>> {
        let core = &self.inner.core;
        if rank as u32 >= core.ranks {
            return Err(Error::InvalidArgument(format!(
                "rank {rank} out of store's {} ranks",
                core.ranks
            )));
        }
        let cap = core.capacity()?;
        let mut span = core.tracer.span(zi_trace::Category::Checkpoint, "ckpt.load");
        span.set_id(version);
        match core.read_slot(cap, rank as u32, core.slot_of(version)) {
            Some((v, payload)) if v == version => {
                span.set_bytes(payload.len() as u64);
                core.state.lock().stats.loads += 1;
                Ok(payload)
            }
            Some((v, _)) => Err(Error::InvalidArgument(format!(
                "checkpoint (rank {rank}, v{version}) was rotated away (slot now holds v{v})"
            ))),
            None => Err(Error::InvalidArgument(format!(
                "no valid checkpoint for (rank {rank}, v{version})"
            ))),
        }
    }

    /// Newest version durably complete on **all** of ranks `0..ranks`
    /// (latest-complete-wins recovery). `None` when no version is
    /// complete everywhere — including on a store nothing was saved to.
    pub fn latest_complete(&self, ranks: usize) -> Result<Option<u64>> {
        let core = &self.inner.core;
        if ranks == 0 || ranks as u32 > core.ranks {
            return Err(Error::InvalidArgument(format!(
                "latest_complete over {ranks} ranks on a store of {}",
                core.ranks
            )));
        }
        let cap = match core.state.lock().slot_capacity {
            Some(c) => c,
            None => return Ok(None),
        };
        let mut complete: Option<Vec<u64>> = None;
        for rank in 0..ranks as u32 {
            let mut versions = Vec::new();
            for slot in 0..core.slots_per_rank as u64 {
                if let Some((v, _)) = core.read_slot(cap, rank, slot) {
                    versions.push(v);
                }
            }
            complete = Some(match complete {
                None => versions,
                Some(prev) => prev.into_iter().filter(|v| versions.contains(v)).collect(),
            });
        }
        Ok(complete.unwrap_or_default().into_iter().max())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemBackend;
    use crate::fault::{FaultPlan, FaultyBackend};

    fn mem_store(ranks: usize, slots: usize) -> (Arc<MemBackend>, CheckpointStore) {
        let backend = Arc::new(MemBackend::new());
        let store = CheckpointStore::new(backend.clone(), ranks, slots).unwrap();
        (backend, store)
    }

    #[test]
    fn round_trip_and_rotation() {
        let (_, store) = mem_store(2, 2);
        store.save(0, 1, b"r0v1").unwrap();
        store.save(1, 1, b"r1v1").unwrap();
        assert_eq!(store.load(0, 1).unwrap(), b"r0v1");
        assert_eq!(store.latest_complete(2).unwrap(), Some(1));

        // v2 and v3 rotate through the two slots; v1 dies when v3 lands
        // in its slot.
        store.save(0, 2, b"r0v2").unwrap();
        store.save(1, 2, b"r1v2").unwrap();
        store.save(0, 3, b"r0v3").unwrap();
        store.save(1, 3, b"r1v3").unwrap();
        assert_eq!(store.latest_complete(2).unwrap(), Some(3));
        assert_eq!(store.load(0, 2).unwrap(), b"r0v2");
        assert!(store.load(0, 1).is_err(), "v1 rotated away");
    }

    #[test]
    fn incomplete_version_is_never_offered() {
        let (_, store) = mem_store(3, 2);
        for r in 0..3 {
            store.save(r, 5, format!("r{r}v5").as_bytes()).unwrap();
        }
        // Rank 1 never finishes v6.
        store.save(0, 6, b"r0v6").unwrap();
        store.save(2, 6, b"r2v6").unwrap();
        assert_eq!(store.latest_complete(3).unwrap(), Some(5));
        // A prefix query still intersects: ranks {0, 1} share only v5.
        assert_eq!(store.latest_complete(2).unwrap(), Some(5));
    }

    #[test]
    fn torn_payload_write_preserves_previous_version() {
        let plan = FaultPlan::new();
        let backend = Arc::new(FaultyBackend::new(MemBackend::new(), plan.clone()));
        let store = CheckpointStore::new(backend.clone(), 1, 2).unwrap();
        store.save(0, 1, &[7u8; 256]).unwrap();
        store.save(0, 2, &[8u8; 256]).unwrap();

        // v3 targets v1's slot; its very first write — the manifest
        // invalidation — tears partway through and the save fails there,
        // leaving slot 1 with a half-zeroed manifest.
        plan.torn_next_writes(1);
        assert!(store.save(0, 3, &[9u8; 256]).is_err());

        // v2 (the latest durable) is untouched and wins recovery.
        assert_eq!(store.latest_complete(1).unwrap(), Some(2));
        assert_eq!(store.load(0, 2).unwrap(), vec![8u8; 256]);
        assert!(store.load(0, 3).is_err(), "torn v3 must scan as absent");
        assert!(store.stats().invalid_slots_skipped > 0);
    }

    #[test]
    fn bit_rot_in_payload_is_detected() {
        let (backend, store) = mem_store(1, 2);
        store.save(0, 1, &[5u8; 512]).unwrap();
        // Flip one payload byte behind the store's back. Version 1 of 2
        // slots lives in slot 1; capacity is MIN_CAPACITY here.
        let mut probe = vec![0u8; 1];
        let payload_off =
            HEADER_LEN + (HEADER_LEN + MIN_CAPACITY) + HEADER_LEN + 100;
        backend.read_at(payload_off, &mut probe).unwrap();
        backend.write_at(payload_off, &[probe[0] ^ 0x40]).unwrap();
        assert!(store.load(0, 1).is_err(), "payload CRC must catch bit rot");
        assert_eq!(store.latest_complete(1).unwrap(), None);
    }

    #[test]
    fn async_saves_drain_and_surface_errors() {
        let plan = FaultPlan::new();
        let backend = Arc::new(FaultyBackend::new(MemBackend::new(), plan.clone()));
        let store = CheckpointStore::new(backend, 1, 4).unwrap();
        for v in 1..=3u64 {
            store.save_async(0, v, vec![v as u8; 128]).unwrap();
        }
        store.drain().unwrap();
        assert_eq!(store.latest_complete(1).unwrap(), Some(3));
        assert_eq!(store.stats().async_saves, 3);

        // A failing background save surfaces at drain, not silently.
        plan.fail_next_writes(10);
        store.save_async(0, 4, vec![4u8; 128]).unwrap();
        assert!(store.drain().is_err());
        plan.fail_next_writes(0);
        // The store keeps working afterwards.
        store.save_async(0, 5, vec![5u8; 128]).unwrap();
        store.drain().unwrap();
        assert_eq!(store.load(0, 5).unwrap(), vec![5u8; 128]);
    }

    #[test]
    fn reopen_recovers_layout_and_data() {
        let backend = Arc::new(MemBackend::new());
        {
            let store = CheckpointStore::new(backend.clone(), 2, 2).unwrap();
            store.save(0, 7, b"zero").unwrap();
            store.save(1, 7, b"one").unwrap();
        }
        let store = CheckpointStore::open(backend.clone()).unwrap();
        assert_eq!(store.ranks(), 2);
        assert_eq!(store.slots_per_rank(), 2);
        assert_eq!(store.latest_complete(2).unwrap(), Some(7));
        assert_eq!(store.load(1, 7).unwrap(), b"one");

        // Opening garbage is a typed error.
        let junk = Arc::new(MemBackend::new());
        junk.write_at(0, &[0xaa; 64]).unwrap();
        assert!(CheckpointStore::open(junk).is_err());
        assert!(CheckpointStore::open(Arc::new(MemBackend::new())).is_err());
    }

    #[test]
    fn oversized_payload_is_rejected() {
        let (_, store) = mem_store(1, 2);
        store.save(0, 1, &[1u8; 100]).unwrap(); // capacity = max(400, 4096)
        assert!(store.save(0, 2, &vec![2u8; 5000]).is_err());
    }
}
