//! Storage backends for the NVMe engine.

use std::fs::{File, OpenOptions};
use std::path::Path;
use zi_sync::atomic::{AtomicU64, Ordering};

use zi_sync::RwLock;
use zi_types::{Error, Result};

/// A block device the engine can issue positioned reads/writes against.
///
/// Implementations must be safe to call concurrently from many worker
/// threads; ranges written by distinct in-flight requests never overlap
/// (the offload engine allocates disjoint extents per tensor shard).
pub trait StorageBackend: Send + Sync {
    /// Read `buf.len()` bytes starting at `offset` into `buf`.
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<()>;
    /// Write all of `data` starting at `offset`, growing the device if
    /// needed.
    fn write_at(&self, offset: u64, data: &[u8]) -> Result<()>;
    /// Durability barrier.
    fn sync(&self) -> Result<()>;
    /// Current device size in bytes. Errors propagate: a device whose
    /// size cannot be read is failing, not empty.
    fn len(&self) -> Result<u64>;
    /// True if the device holds no bytes.
    fn is_empty(&self) -> Result<bool> {
        Ok(self.len()? == 0)
    }
}

/// Real-file backend using positioned I/O (`pread`/`pwrite`).
pub struct FileBackend {
    file: File,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
}

impl FileBackend {
    /// Open (creating/truncating) the backing file at `path`.
    pub fn create(path: &Path) -> Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(FileBackend { file, bytes_read: AtomicU64::new(0), bytes_written: AtomicU64::new(0) })
    }

    /// Open the existing file at `path` without truncating it —
    /// recovery paths (e.g. [`crate::CheckpointStore::open`]) reattach
    /// to a device that already holds data.
    pub fn open(path: &Path) -> Result<Self> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        Ok(FileBackend { file, bytes_read: AtomicU64::new(0), bytes_written: AtomicU64::new(0) })
    }

    /// Bytes read through this backend.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read.load(Ordering::Relaxed)
    }

    /// Bytes written through this backend.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written.load(Ordering::Relaxed)
    }
}

#[cfg(unix)]
impl StorageBackend for FileBackend {
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<()> {
        use std::os::unix::fs::FileExt;
        self.file.read_exact_at(buf, offset)?;
        self.bytes_read.fetch_add(buf.len() as u64, Ordering::Relaxed);
        Ok(())
    }

    fn write_at(&self, offset: u64, data: &[u8]) -> Result<()> {
        use std::os::unix::fs::FileExt;
        self.file.write_all_at(data, offset)?;
        self.bytes_written.fetch_add(data.len() as u64, Ordering::Relaxed);
        Ok(())
    }

    fn sync(&self) -> Result<()> {
        self.file.sync_data()?;
        Ok(())
    }

    fn len(&self) -> Result<u64> {
        Ok(self.file.metadata()?.len())
    }
}

/// In-memory backend with deterministic behaviour for tests.
///
/// For failure injection, wrap it in a
/// [`FaultyBackend`](crate::fault::FaultyBackend) driven by a
/// [`FaultPlan`](crate::fault::FaultPlan).
#[derive(Default)]
pub struct MemBackend {
    data: RwLock<Vec<u8>>,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
}

impl MemBackend {
    /// Empty in-memory device.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes read so far.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read.load(Ordering::Relaxed)
    }

    /// Bytes written so far.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written.load(Ordering::Relaxed)
    }
}

impl StorageBackend for MemBackend {
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<()> {
        let data = self.data.read();
        let start = offset as usize;
        let end = start + buf.len();
        if end > data.len() {
            return Err(Error::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                format!("read [{start}, {end}) beyond device of {} bytes", data.len()),
            )));
        }
        buf.copy_from_slice(&data[start..end]);
        self.bytes_read.fetch_add(buf.len() as u64, Ordering::Relaxed);
        Ok(())
    }

    fn write_at(&self, offset: u64, data_in: &[u8]) -> Result<()> {
        let mut data = self.data.write();
        let start = offset as usize;
        let end = start + data_in.len();
        if end > data.len() {
            data.resize(end, 0);
        }
        data[start..end].copy_from_slice(data_in);
        self.bytes_written.fetch_add(data_in.len() as u64, Ordering::Relaxed);
        Ok(())
    }

    fn sync(&self) -> Result<()> {
        Ok(())
    }

    fn len(&self) -> Result<u64> {
        Ok(self.data.read().len() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_backend_round_trip() {
        let b = MemBackend::new();
        assert!(b.is_empty().unwrap());
        b.write_at(4, &[1, 2, 3]).unwrap();
        assert_eq!(b.len().unwrap(), 7);
        let mut buf = [0u8; 3];
        b.read_at(4, &mut buf).unwrap();
        assert_eq!(buf, [1, 2, 3]);
        assert_eq!(b.bytes_written(), 3);
        assert_eq!(b.bytes_read(), 3);
    }

    #[test]
    fn mem_backend_read_past_end_fails() {
        let b = MemBackend::new();
        b.write_at(0, &[9]).unwrap();
        let mut buf = [0u8; 2];
        assert!(b.read_at(0, &mut buf).is_err());
    }

    #[test]
    fn file_backend_round_trip() {
        let dir = std::env::temp_dir().join(format!("zi_nvme_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("dev0.bin");
        let b = FileBackend::create(&path).unwrap();
        b.write_at(100, b"hello nvme").unwrap();
        b.sync().unwrap();
        let mut buf = vec![0u8; 10];
        b.read_at(100, &mut buf).unwrap();
        assert_eq!(&buf, b"hello nvme");
        assert_eq!(b.len().unwrap(), 110);
        assert_eq!(b.bytes_written(), 10);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn file_backend_sparse_region_reads_zero() {
        let dir = std::env::temp_dir().join(format!("zi_nvme_sparse_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("dev1.bin");
        let b = FileBackend::create(&path).unwrap();
        b.write_at(1000, &[0xab]).unwrap();
        let mut buf = vec![0xffu8; 8];
        b.read_at(0, &mut buf).unwrap();
        assert_eq!(buf, [0u8; 8]);
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Wraps any backend with a bandwidth throttle and fixed per-request
/// latency, turning the in-memory device into a deterministic stand-in
/// for a real NVMe SSD (e.g. 3.2 GB/s, 80 µs). Used by benches to make
/// overlap and prefetching effects measurable.
pub struct ThrottledBackend<B> {
    inner: B,
    bytes_per_sec: f64,
    latency: std::time::Duration,
}

impl<B: StorageBackend> ThrottledBackend<B> {
    /// Throttle `inner` to `bytes_per_sec` with `latency` per request.
    pub fn new(inner: B, bytes_per_sec: f64, latency: std::time::Duration) -> Self {
        assert!(bytes_per_sec > 0.0, "bandwidth must be positive");
        ThrottledBackend { inner, bytes_per_sec, latency }
    }

    fn delay(&self, bytes: usize) {
        let transfer = std::time::Duration::from_secs_f64(bytes as f64 / self.bytes_per_sec);
        zi_sync::thread::sleep(self.latency + transfer);
    }

    /// Access the wrapped backend.
    pub fn inner(&self) -> &B {
        &self.inner
    }
}

impl<B: StorageBackend> StorageBackend for ThrottledBackend<B> {
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<()> {
        self.delay(buf.len());
        self.inner.read_at(offset, buf)
    }

    fn write_at(&self, offset: u64, data: &[u8]) -> Result<()> {
        self.delay(data.len());
        self.inner.write_at(offset, data)
    }

    fn sync(&self) -> Result<()> {
        self.inner.sync()
    }

    fn len(&self) -> Result<u64> {
        self.inner.len()
    }
}

#[cfg(test)]
mod throttle_tests {
    use super::*;
    use std::time::{Duration, Instant};

    #[test]
    fn throttle_enforces_bandwidth() {
        // 1 MB/s + 0 latency: a 100 KB read takes >= 100 ms.
        let b = ThrottledBackend::new(MemBackend::new(), 1e6, Duration::ZERO);
        b.write_at(0, &vec![1u8; 100_000]).unwrap(); // pays its own delay
        let start = Instant::now();
        let mut buf = vec![0u8; 100_000];
        b.read_at(0, &mut buf).unwrap();
        assert!(start.elapsed() >= Duration::from_millis(95));
        assert_eq!(buf[0], 1);
    }

    #[test]
    fn throttled_errors_still_propagate() {
        use crate::fault::{FaultPlan, FaultyBackend};
        let plan = FaultPlan::new();
        plan.fail_next_reads(1);
        let inner = FaultyBackend::new(MemBackend::new(), plan);
        let b = ThrottledBackend::new(inner, 1e9, Duration::ZERO);
        let mut buf = [0u8; 4];
        assert!(b.read_at(0, &mut buf).is_err());
    }
}
