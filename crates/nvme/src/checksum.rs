//! CRC32-C (Castagnoli, reflected polynomial 0x82F63B78) for
//! end-to-end shard integrity.
//!
//! CRC32-C rather than the zip/png CRC32 for the same reason iSCSI,
//! ext4 and btrfs chose it: x86-64 executes it in hardware (SSE 4.2
//! `crc32` instruction, 8 bytes per ~1-cycle-throughput op), which is
//! what keeps the verify cost a small fraction of the memcpy every
//! shard load already pays (the `resilience_checksum` bench measures
//! both paths). Where the instruction is unavailable we fall back to a
//! software slicing-by-8 implementation — the offline build cannot pull
//! a crc crate, so both paths are hand-written. The checksums never
//! leave the process, so the polynomial is an internal detail.

use zi_sync::OnceLock;

/// `TABLES[0]` is the classic byte-at-a-time table; `TABLES[k]` maps a
/// byte to its CRC contribution from `k` positions deeper in the input.
fn tables() -> &'static [[u32; 256]; 8] {
    static TABLES: OnceLock<[[u32; 256]; 8]> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut t = [[0u32; 256]; 8];
        for (i, entry) in t[0].iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0x82f6_3b78 ^ (c >> 1) } else { c >> 1 };
            }
            *entry = c;
        }
        for i in 0..256usize {
            let mut c = t[0][i];
            for k in 1..8 {
                c = t[0][(c & 0xff) as usize] ^ (c >> 8);
                t[k][i] = c;
            }
        }
        t
    })
}

/// Software slicing-by-8: folds 8 input bytes per iteration through
/// eight independent table lookups.
fn crc32c_sw(data: &[u8]) -> u32 {
    let t = tables();
    let mut c = 0xffff_ffffu32;
    let mut chunks = data.chunks_exact(8);
    for chunk in &mut chunks {
        let lo = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]) ^ c;
        let hi = u32::from_le_bytes([chunk[4], chunk[5], chunk[6], chunk[7]]);
        c = t[7][(lo & 0xff) as usize]
            ^ t[6][((lo >> 8) & 0xff) as usize]
            ^ t[5][((lo >> 16) & 0xff) as usize]
            ^ t[4][(lo >> 24) as usize]
            ^ t[3][(hi & 0xff) as usize]
            ^ t[2][((hi >> 8) & 0xff) as usize]
            ^ t[1][((hi >> 16) & 0xff) as usize]
            ^ t[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        c = t[0][((c ^ b as u32) & 0xff) as usize] ^ (c >> 8);
    }
    c ^ 0xffff_ffff
}

/// Hardware path: the SSE 4.2 `crc32` instruction, 8 bytes at a time.
///
/// # Safety
/// Caller must have verified `sse4.2` is available on this CPU.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse4.2")]
unsafe fn crc32c_hw(data: &[u8]) -> u32 {
    use std::arch::x86_64::{_mm_crc32_u64, _mm_crc32_u8};
    let mut c = u64::from(!0u32);
    let mut chunks = data.chunks_exact(8);
    for chunk in &mut chunks {
        let v = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        c = _mm_crc32_u64(c, v);
    }
    let mut c = c as u32;
    for &b in chunks.remainder() {
        c = _mm_crc32_u8(c, b);
    }
    !c
}

/// CRC32-C of `data` (Castagnoli, as used by iSCSI/ext4/btrfs).
pub fn crc32(data: &[u8]) -> u32 {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("sse4.2") {
            // SAFETY: feature presence checked immediately above.
            return unsafe { crc32c_hw(data) };
        }
    }
    crc32c_sw(data)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference byte-at-a-time implementation.
    fn crc32c_bytewise(data: &[u8]) -> u32 {
        let t = &tables()[0];
        let mut c = 0xffff_ffffu32;
        for &b in data {
            c = t[((c ^ b as u32) & 0xff) as usize] ^ (c >> 8);
        }
        c ^ 0xffff_ffff
    }

    #[test]
    fn known_vectors() {
        // Standard CRC32-C check values (RFC 3720 appendix B.4 et al.).
        assert_eq!(crc32(b"123456789"), 0xe306_9283);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(&[0u8; 32]), 0x8a91_36aa);
        assert_eq!(crc32(&[0xffu8; 32]), 0x62a8_ab43);
    }

    #[test]
    fn all_paths_agree_at_every_length() {
        let data: Vec<u8> = (0..1024u32).map(|i| (i.wrapping_mul(31) >> 3) as u8).collect();
        for len in [0usize, 1, 7, 8, 9, 15, 16, 63, 64, 100, 1023, 1024] {
            let expect = crc32c_bytewise(&data[..len]);
            assert_eq!(crc32c_sw(&data[..len]), expect, "sw len {len}");
            assert_eq!(crc32(&data[..len]), expect, "dispatch len {len}");
        }
    }

    #[test]
    fn sensitive_to_single_bit_flips() {
        let clean = vec![0x5au8; 4096];
        let base = crc32(&clean);
        for byte in [0usize, 1, 2047, 4095] {
            for bit in 0..8 {
                let mut dirty = clean.clone();
                dirty[byte] ^= 1 << bit;
                assert_ne!(crc32(&dirty), base, "flip at byte {byte} bit {bit} undetected");
            }
        }
    }
}
