//! Asynchronous I/O engine with worker-pool parallelism.
//!
//! The engine accepts bulk read/write submissions, executes them on a pool
//! of worker threads (the analogue of DeepNVMe's parallelized I/O request
//! handling), and lets callers either wait on individual tickets or issue a
//! `flush` barrier that drains every outstanding request — the "explicit
//! synchronization requests to flush ongoing read/writes" of Sec. 6.3.
//!
//! Every request runs under a [`RetryPolicy`]: transient backend errors
//! are retried with bounded, jittered backoff and a per-request deadline.
//! When a request gives up (attempts exhausted or deadline exceeded) the
//! engine latches a *device failed* flag — subsequent requests fail fast
//! with [`Error::DeviceFailed`] instead of burning their own retry
//! budgets, and the offload layer above uses the flag to fail over new
//! shards to CPU memory.

use std::collections::HashMap;
use zi_sync::Arc;

use zi_sync::atomic::{AtomicBool, AtomicU64, Ordering};
use zi_sync::channel::{unbounded, Sender};
use zi_sync::thread::JoinHandle;
use zi_sync::{Condvar, Mutex};
use zi_trace::{Category, Counter, Tracer};
use zi_types::{Error, Result};

use crate::backend::StorageBackend;
use crate::retry::RetryPolicy;

/// Handle for one submitted request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ticket(u64);

/// Aggregate I/O statistics for an engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Completed read requests.
    pub reads: u64,
    /// Completed write requests.
    pub writes: u64,
    /// Bytes moved device→host.
    pub bytes_read: u64,
    /// Bytes moved host→device.
    pub bytes_written: u64,
    /// Requests that completed with an error.
    pub errors: u64,
    /// Individual attempt retries across all requests (a request that
    /// succeeded on its third attempt contributes 2).
    pub retries: u64,
    /// Requests whose retry budget was exhausted or deadline exceeded.
    pub gave_up: u64,
    /// High-water mark of simultaneously in-flight requests — the proof
    /// that overlap-centric callers (prefetcher, pipelined optimizer
    /// step) actually kept the device queue busy.
    pub in_flight_peak: u64,
}

enum Request {
    Read { ticket: Ticket, offset: u64, len: usize },
    Write { ticket: Ticket, offset: u64, data: Vec<u8> },
    /// Fire-and-forget write: no completion entry is stored; errors are
    /// collected for the next `flush`. Used for overlapped offload writes
    /// that nobody waits on individually.
    DetachedWrite { offset: u64, data: Vec<u8> },
}

enum Outcome {
    /// Read completed; buffer holds the data.
    ReadOk(Vec<u8>),
    /// Write completed.
    WriteOk,
    /// Request failed after exhausting its retry policy (or with a
    /// permanent error).
    Failed(Error),
}

struct Shared {
    completions: Mutex<HashMap<u64, Outcome>>,
    done: Condvar,
    in_flight: AtomicU64,
    stats: Mutex<IoStats>,
    detached_errors: Mutex<Vec<Error>>,
    /// Latched when any request gives up; later requests fail fast.
    device_failed: AtomicBool,
    /// Structured tracing: nc-transfer spans for every served request,
    /// retry/give-up events, per-tier byte counters, in-flight gauge.
    tracer: Tracer,
}

impl Shared {
    /// Count a new submission and fold the resulting queue depth into the
    /// in-flight high-water mark.
    fn note_submit(&self) {
        let now = self.in_flight.fetch_add(1, Ordering::AcqRel) + 1;
        self.tracer.io_inflight_inc();
        let mut st = self.stats.lock();
        if now > st.in_flight_peak {
            st.in_flight_peak = now;
        }
    }

    /// Undo one submission's in-flight accounting (request completed or
    /// could not be enqueued).
    fn note_done(&self) {
        self.in_flight.fetch_sub(1, Ordering::AcqRel);
        self.tracer.io_inflight_dec();
    }

    /// Run `op` under `policy` with fail-fast once the device is dead,
    /// recording retry/give-up stats.
    fn execute<T>(
        &self,
        policy: &RetryPolicy,
        context: &str,
        op: impl FnMut() -> Result<T>,
    ) -> Result<T> {
        if self.device_failed.load(Ordering::Acquire) {
            self.stats.lock().errors += 1;
            return Err(Error::DeviceFailed(format!(
                "{context}: device previously declared failed"
            )));
        }
        let report = policy.run(context, op);
        {
            let mut st = self.stats.lock();
            st.retries += report.retries as u64;
            if report.gave_up {
                st.gave_up += 1;
            }
            if report.result.is_err() {
                st.errors += 1;
            }
        }
        if report.retries > 0 {
            self.tracer.count(Counter::Retries, report.retries as u64);
            self.tracer.instant(Category::Retry, "io.retry", 0, report.retries as u64);
        }
        if report.gave_up {
            // Only the first give-up is a transition; later ones find the
            // latch already set.
            if !self.device_failed.swap(true, Ordering::Release) {
                self.tracer.count(Counter::DegradedTransitions, 1);
            }
            self.tracer.instant(Category::Retry, "io.gave_up", 0, 0);
        }
        report.result
    }
}

/// Asynchronous NVMe I/O engine.
pub struct NvmeEngine {
    backend: Arc<dyn StorageBackend>,
    tx: Option<Sender<Request>>,
    workers: Vec<JoinHandle<()>>,
    shared: Arc<Shared>,
    next_ticket: AtomicU64,
    policy: RetryPolicy,
}

impl NvmeEngine {
    /// Spawn an engine with `num_workers` I/O threads over `backend`,
    /// using the default [`RetryPolicy`].
    pub fn new(backend: Arc<dyn StorageBackend>, num_workers: usize) -> Self {
        Self::with_policy(backend, num_workers, RetryPolicy::default())
    }

    /// Spawn an engine with an explicit retry policy and a private
    /// (always-on) tracer.
    pub fn with_policy(
        backend: Arc<dyn StorageBackend>,
        num_workers: usize,
        policy: RetryPolicy,
    ) -> Self {
        Self::with_policy_tracer(backend, num_workers, policy, Tracer::new())
    }

    /// Spawn an engine recording its nc-transfer spans and I/O counters
    /// into an externally owned `tracer` (one tracer is typically shared
    /// by every subsystem of a node).
    pub fn with_policy_tracer(
        backend: Arc<dyn StorageBackend>,
        num_workers: usize,
        policy: RetryPolicy,
        tracer: Tracer,
    ) -> Self {
        assert!(num_workers > 0, "engine needs at least one worker");
        let (tx, rx) = unbounded::<Request>();
        let shared = Arc::new(Shared {
            completions: Mutex::new(HashMap::new()),
            done: Condvar::new(),
            in_flight: AtomicU64::new(0),
            stats: Mutex::new(IoStats::default()),
            detached_errors: Mutex::new(Vec::new()),
            device_failed: AtomicBool::new(false),
            tracer,
        });
        let mut workers = Vec::with_capacity(num_workers);
        for i in 0..num_workers {
            let rx = rx.clone();
            let backend = Arc::clone(&backend);
            let shared = Arc::clone(&shared);
            workers.push(
                zi_sync::thread::Builder::new()
                    .name(format!("zi-nvme-{i}"))
                    .spawn(move || {
                        while let Ok(req) = rx.recv() {
                            Self::serve(&req, &backend, &shared, &policy);
                            // Decrement under the completions lock: flush()
                            // checks `in_flight` while holding that lock, so
                            // a decrement+notify slipped between its check
                            // and its wait would be a lost wakeup (flush
                            // sleeps forever on an already-drained engine).
                            let _comps = shared.completions.lock();
                            shared.note_done();
                            shared.done.notify_all();
                        }
                    })
                    .expect("spawn nvme worker"),
            );
        }
        NvmeEngine { backend, tx: Some(tx), workers, shared, next_ticket: AtomicU64::new(0), policy }
    }

    /// Execute one request on a worker thread and record its outcome.
    fn serve(req: &Request, backend: &Arc<dyn StorageBackend>, shared: &Shared, policy: &RetryPolicy) {
        match req {
            Request::DetachedWrite { offset, data } => {
                let context = format!("detached write {} B at {offset:#x}", data.len());
                let mut span = shared.tracer.span(Category::NcTransfer, "nc.write_detached");
                span.set_bytes(data.len() as u64);
                match shared.execute(policy, &context, || backend.write_at(*offset, data)) {
                    Ok(()) => {
                        shared.tracer.count(Counter::NcWriteBytes, data.len() as u64);
                        let mut st = shared.stats.lock();
                        st.writes += 1;
                        st.bytes_written += data.len() as u64;
                    }
                    Err(e) => shared.detached_errors.lock().push(e),
                }
            }
            Request::Read { ticket, offset, len } => {
                let context = format!("read {len} B at {offset:#x}");
                let mut span = shared.tracer.span(Category::NcTransfer, "nc.read");
                span.set_bytes(*len as u64);
                span.set_id(ticket.0);
                let outcome = match shared.execute(policy, &context, || {
                    let mut buf = vec![0u8; *len];
                    backend.read_at(*offset, &mut buf)?;
                    Ok(buf)
                }) {
                    Ok(buf) => {
                        shared.tracer.count(Counter::NcReadBytes, *len as u64);
                        let mut st = shared.stats.lock();
                        st.reads += 1;
                        st.bytes_read += *len as u64;
                        Outcome::ReadOk(buf)
                    }
                    Err(e) => Outcome::Failed(e),
                };
                drop(span);
                shared.completions.lock().insert(ticket.0, outcome);
            }
            Request::Write { ticket, offset, data } => {
                let context = format!("write {} B at {offset:#x}", data.len());
                let mut span = shared.tracer.span(Category::NcTransfer, "nc.write");
                span.set_bytes(data.len() as u64);
                span.set_id(ticket.0);
                let outcome =
                    match shared.execute(policy, &context, || backend.write_at(*offset, data)) {
                        Ok(()) => {
                            shared.tracer.count(Counter::NcWriteBytes, data.len() as u64);
                            let mut st = shared.stats.lock();
                            st.writes += 1;
                            st.bytes_written += data.len() as u64;
                            Outcome::WriteOk
                        }
                        Err(e) => Outcome::Failed(e),
                    };
                drop(span);
                shared.completions.lock().insert(ticket.0, outcome);
            }
        }
    }

    /// Resolve a submission that could not reach the worker pool (every
    /// worker exited — a bug or a panic storm, not a device fault) as a
    /// typed failure the owner's `wait` will surface, instead of
    /// panicking in the submitter.
    fn fail_submission(&self, ticket: Option<Ticket>) {
        let err = Error::Internal("nvme worker pool is gone; request dropped".into());
        let mut comps = self.shared.completions.lock();
        match ticket {
            Some(t) => {
                comps.insert(t.0, Outcome::Failed(err));
            }
            None => self.shared.detached_errors.lock().push(err),
        }
        self.shared.note_done();
        self.shared.done.notify_all();
    }

    fn submit(&self, make: impl FnOnce(Ticket) -> Request) -> Ticket {
        let ticket = Ticket(self.next_ticket.fetch_add(1, Ordering::Relaxed));
        self.shared.note_submit();
        match &self.tx {
            Some(tx) if tx.send(make(ticket)).is_ok() => {}
            _ => self.fail_submission(Some(ticket)),
        }
        ticket
    }

    /// Submit an asynchronous read of `len` bytes at `offset`.
    pub fn submit_read(&self, offset: u64, len: usize) -> Ticket {
        self.submit(|ticket| Request::Read { ticket, offset, len })
    }

    /// Submit an asynchronous write of `data` at `offset`.
    pub fn submit_write(&self, offset: u64, data: Vec<u8>) -> Ticket {
        self.submit(|ticket| Request::Write { ticket, offset, data })
    }

    /// Submit a fire-and-forget write. No ticket: the write completes in
    /// the background and any error surfaces at the next [`Self::flush`].
    pub fn submit_write_detached(&self, offset: u64, data: Vec<u8>) {
        self.shared.note_submit();
        match &self.tx {
            Some(tx) if tx.send(Request::DetachedWrite { offset, data }).is_ok() => {}
            _ => self.fail_submission(None),
        }
    }

    /// Submit a bulk batch of reads: `(offset, len)` pairs.
    pub fn submit_read_bulk(&self, requests: &[(u64, usize)]) -> Vec<Ticket> {
        requests.iter().map(|&(off, len)| self.submit_read(off, len)).collect()
    }

    /// True once `ticket`'s outcome is waiting to be collected: a
    /// [`Self::wait`] on it would return without blocking. Used by the
    /// prefetcher to tell a *timely* hit (transfer already finished at
    /// demand time) from a *late* one (still in flight).
    pub fn is_ready(&self, ticket: Ticket) -> bool {
        self.shared.completions.lock().contains_key(&ticket.0)
    }

    /// Block until `ticket` completes. Reads return `Some(buffer)`, writes
    /// return `None`.
    pub fn wait(&self, ticket: Ticket) -> Result<Option<Vec<u8>>> {
        let mut comps = self.shared.completions.lock();
        loop {
            if let Some(outcome) = comps.remove(&ticket.0) {
                return match outcome {
                    Outcome::ReadOk(buf) => Ok(Some(buf)),
                    Outcome::WriteOk => Ok(None),
                    Outcome::Failed(err) => Err(err),
                };
            }
            self.shared.done.wait(&mut comps);
        }
    }

    /// Wait until every outstanding request has completed (synchronization
    /// barrier), then issue a durability sync on the backend. Errors from
    /// detached writes are reported here. Completions awaiting their
    /// owner's `wait` are left untouched, so concurrent users of a shared
    /// engine are unaffected.
    pub fn flush(&self) -> Result<()> {
        // An instant, not a span: the barrier's wait is idle time, and a
        // duration here would pollute the nc hop's busy union.
        self.shared.tracer.instant(Category::NcTransfer, "nc.flush", 0, 0);
        let mut comps = self.shared.completions.lock();
        while self.shared.in_flight.load(Ordering::Acquire) > 0 {
            self.shared.done.wait(&mut comps);
        }
        drop(comps);
        if let Some(err) = {
            let mut errs = self.shared.detached_errors.lock();
            if errs.is_empty() { None } else { Some(errs.remove(0)) }
        } {
            return Err(err);
        }
        self.backend.sync()
    }

    /// Number of requests submitted but not yet completed.
    pub fn in_flight(&self) -> u64 {
        self.shared.in_flight.load(Ordering::Acquire)
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> IoStats {
        *self.shared.stats.lock()
    }

    /// True once any request has exhausted its retry budget — the device
    /// is considered dead and new requests fail fast. The offload layer
    /// uses this to degrade gracefully to CPU memory.
    pub fn device_failed(&self) -> bool {
        self.shared.device_failed.load(Ordering::Acquire)
    }

    /// The retry policy requests run under.
    pub fn policy(&self) -> RetryPolicy {
        self.policy
    }

    /// Number of worker threads.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// The tracer this engine records into.
    pub fn tracer(&self) -> &Tracer {
        &self.shared.tracer
    }
}

impl Drop for NvmeEngine {
    fn drop(&mut self) {
        // Close the channel so workers exit, then join them.
        self.tx.take();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemBackend;
    use crate::fault::{FaultPlan, FaultyBackend};

    fn engine(workers: usize) -> (Arc<MemBackend>, NvmeEngine) {
        let backend = Arc::new(MemBackend::new());
        let eng = NvmeEngine::new(Arc::clone(&backend) as Arc<dyn StorageBackend>, workers);
        (backend, eng)
    }

    /// Engine over a faulty in-memory device with a fast test policy.
    fn faulty_engine(workers: usize, policy: RetryPolicy) -> (FaultPlan, NvmeEngine) {
        let plan = FaultPlan::new();
        let backend = Arc::new(FaultyBackend::new(MemBackend::new(), plan.clone()));
        let eng = NvmeEngine::with_policy(backend as Arc<dyn StorageBackend>, workers, policy);
        (plan, eng)
    }

    fn fast_policy() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: std::time::Duration::from_micros(200),
            max_backoff: std::time::Duration::from_millis(2),
            deadline: std::time::Duration::from_secs(5),
            jitter_seed: 11,
        }
    }

    #[test]
    fn write_then_read_round_trip() {
        let (_, eng) = engine(4);
        let w = eng.submit_write(64, vec![7u8; 32]);
        assert!(eng.wait(w).unwrap().is_none());
        let r = eng.submit_read(64, 32);
        let buf = eng.wait(r).unwrap().expect("read returns data");
        assert_eq!(buf, vec![7u8; 32]);
        let st = eng.stats();
        assert_eq!(st.reads, 1);
        assert_eq!(st.writes, 1);
        assert_eq!(st.bytes_read, 32);
        assert_eq!(st.bytes_written, 32);
        assert_eq!(st.retries, 0);
        assert_eq!(st.gave_up, 0);
    }

    #[test]
    fn bulk_reads_complete_in_any_order() {
        let (_, eng) = engine(8);
        for i in 0u8..16 {
            let w = eng.submit_write(i as u64 * 8, vec![i; 8]);
            eng.wait(w).unwrap();
        }
        let reqs: Vec<(u64, usize)> = (0..16).map(|i| (i as u64 * 8, 8)).collect();
        let tickets = eng.submit_read_bulk(&reqs);
        // Wait in reverse order to exercise out-of-order completion.
        for (i, t) in tickets.into_iter().enumerate().rev() {
            let buf = eng.wait(t).unwrap().unwrap();
            assert_eq!(buf, vec![i as u8; 8]);
        }
    }

    #[test]
    fn in_flight_peak_tracks_queue_depth() {
        use crate::backend::ThrottledBackend;
        // A slow device guarantees a burst of submissions piles up before
        // any worker completes, so the high-water mark is deterministic.
        let backend = Arc::new(ThrottledBackend::new(
            MemBackend::new(),
            1e9,
            std::time::Duration::from_millis(2),
        ));
        let eng = NvmeEngine::new(backend as Arc<dyn StorageBackend>, 4);
        let tickets: Vec<Ticket> =
            (0..4u64).map(|i| eng.submit_write(i * 32, vec![i as u8; 32])).collect();
        for t in tickets {
            eng.wait(t).unwrap();
        }
        assert!(
            eng.stats().in_flight_peak >= 2,
            "burst of 4 writes over a 2 ms device must overlap: {:?}",
            eng.stats()
        );
    }

    #[test]
    fn flush_drains_everything() {
        let (backend, eng) = engine(4);
        for i in 0..64u64 {
            eng.submit_write(i * 128, vec![i as u8; 128]);
        }
        eng.flush().unwrap();
        assert_eq!(eng.in_flight(), 0);
        assert_eq!(backend.bytes_written(), 64 * 128);
        assert_eq!(eng.stats().writes, 64);
    }

    #[test]
    fn transient_read_faults_are_retried_to_success() {
        let (plan, eng) = faulty_engine(1, fast_policy());
        let w = eng.submit_write(0, vec![3u8; 8]);
        eng.wait(w).unwrap();
        plan.fail_next_reads(2); // < max_attempts − 1
        let r = eng.submit_read(0, 8);
        let buf = eng.wait(r).unwrap().unwrap();
        assert_eq!(buf, vec![3u8; 8]);
        let st = eng.stats();
        assert_eq!(st.retries, 2);
        assert_eq!(st.gave_up, 0);
        assert_eq!(st.errors, 0);
        assert!(!eng.device_failed());
    }

    #[test]
    fn torn_write_is_healed_by_retry() {
        let (plan, eng) = faulty_engine(1, fast_policy());
        plan.torn_next_writes(1);
        let w = eng.submit_write(0, vec![0xcd; 256]);
        eng.wait(w).unwrap(); // retry rewrote the full extent
        let r = eng.submit_read(0, 256);
        assert_eq!(eng.wait(r).unwrap().unwrap(), vec![0xcd; 256]);
        assert_eq!(eng.stats().retries, 1);
        assert_eq!(plan.injected().torn_writes, 1);
    }

    #[test]
    fn exhausted_retries_latch_device_failed_and_fail_fast() {
        let (plan, eng) = faulty_engine(1, fast_policy());
        let w = eng.submit_write(0, vec![1u8; 4]);
        eng.wait(w).unwrap();
        plan.kill();
        let r = eng.submit_read(0, 4);
        let err = eng.wait(r).unwrap_err();
        // Scripted death injects DeviceFailed (permanent) — no retry loop.
        assert!(err.is_device_failure());
        // Permanent backend errors don't trip the give-up latch; a
        // transient storm that exhausts the budget does.
        plan.revive();
        plan.fail_next_reads(u32::MAX);
        let r = eng.submit_read(0, 4);
        let err = eng.wait(r).unwrap_err();
        assert!(matches!(err, Error::DeviceFailed(_)));
        assert!(eng.device_failed());
        let st = eng.stats();
        assert_eq!(st.gave_up, 1);
        assert_eq!(st.retries, 3);
        // Fail-fast path: no further retries are burned.
        plan.fail_next_reads(0);
        let r = eng.submit_read(0, 4);
        assert!(matches!(eng.wait(r).unwrap_err(), Error::DeviceFailed(_)));
        assert_eq!(eng.stats().retries, 3);
    }

    #[test]
    fn read_error_surfaces_at_wait() {
        let (plan, eng) = faulty_engine(2, RetryPolicy::none());
        plan.fail_next_reads(1);
        let t = eng.submit_read(0, 8);
        let err = eng.wait(t).unwrap_err();
        assert!(err.to_string().contains("injected read failure"));
        assert_eq!(eng.stats().errors, 1);
    }

    #[test]
    fn flush_reports_detached_errors() {
        let (plan, eng) = faulty_engine(2, RetryPolicy::none());
        plan.fail_next_writes(1);
        eng.submit_write_detached(0, vec![1, 2, 3]);
        let err = eng.flush().unwrap_err();
        assert!(err.to_string().contains("injected write failure"));
        // A subsequent flush succeeds (error consumed).
        eng.flush().unwrap();
    }

    #[test]
    fn concurrent_submitters() {
        let (_, eng) = engine(4);
        let eng = Arc::new(eng);
        let mut handles = Vec::new();
        for tnum in 0..4u64 {
            let e = Arc::clone(&eng);
            handles.push(zi_sync::thread::spawn(move || {
                for i in 0..32u64 {
                    let off = (tnum * 32 + i) * 16;
                    let w = e.submit_write(off, vec![(tnum * 32 + i) as u8; 16]);
                    e.wait(w).unwrap();
                    let r = e.submit_read(off, 16);
                    let buf = e.wait(r).unwrap().unwrap();
                    assert_eq!(buf[0], (tnum * 32 + i) as u8);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(eng.stats().writes, 128);
        assert_eq!(eng.stats().reads, 128);
    }

    #[test]
    fn drop_joins_workers_cleanly() {
        let (_, eng) = engine(3);
        let w = eng.submit_write(0, vec![1u8; 4]);
        eng.wait(w).unwrap();
        drop(eng); // must not hang or panic
    }

    #[test]
    fn file_backend_through_engine() {
        let dir = std::env::temp_dir().join(format!("zi_nvme_eng_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let backend =
            Arc::new(crate::backend::FileBackend::create(&dir.join("dev.bin")).unwrap());
        let eng = NvmeEngine::new(backend as Arc<dyn StorageBackend>, 4);
        let payload: Vec<u8> = (0..255u8).collect();
        let w = eng.submit_write(4096, payload.clone());
        eng.wait(w).unwrap();
        eng.flush().unwrap();
        let r = eng.submit_read(4096, payload.len());
        assert_eq!(eng.wait(r).unwrap().unwrap(), payload);
        drop(eng);
        std::fs::remove_dir_all(&dir).ok();
    }
}
