#![warn(missing_docs)]

//! DeepNVMe: asynchronous bulk-I/O engine for NVMe offload.
//!
//! Reproduces the C++ NVMe library of the infinity offload engine
//! (Sec. 6.3): bulk read/write requests with asynchronous completion,
//! explicit flush barriers, aggressive parallelization of I/O across a
//! worker pool, and buffer reuse via the pinned-memory layer in
//! `zi-memory`.
//!
//! Two storage backends are provided:
//! * [`FileBackend`] — a real file accessed with positioned reads/writes
//!   from many threads; this is the closest laptop equivalent of an NVMe
//!   SSD and is what the benches measure.
//! * [`MemBackend`] — an in-memory device with byte counters, for
//!   deterministic tests.
//!
//! Resilience layers (see DESIGN.md, "Failure model & recovery"):
//! * [`FaultyBackend`] + [`FaultPlan`] — deterministic fault injection
//!   (transient errors, latency spikes, torn writes, bit flips, device
//!   death) for chaos testing any backend.
//! * [`RetryPolicy`] — bounded, jittered, deadline-capped retry of
//!   transient failures, wired into every [`NvmeEngine`] request.
//! * [`checksum::crc32`] — shard integrity checksums used by the offload
//!   layer to detect silent corruption end to end.

pub mod backend;
pub mod checksum;
pub mod engine;
pub mod fault;
pub mod retry;
pub mod store;

pub use backend::{FileBackend, MemBackend, StorageBackend, ThrottledBackend};
pub use engine::{IoStats, NvmeEngine, Ticket};
pub use fault::{FaultPlan, FaultProfile, FaultyBackend, InjectedStats};
pub use retry::{RetryPolicy, RetryReport};
pub use store::{CheckpointStore, StoreStats};
