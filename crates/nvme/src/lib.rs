#![warn(missing_docs)]

//! DeepNVMe: asynchronous bulk-I/O engine for NVMe offload.
//!
//! Reproduces the C++ NVMe library of the infinity offload engine
//! (Sec. 6.3): bulk read/write requests with asynchronous completion,
//! explicit flush barriers, aggressive parallelization of I/O across a
//! worker pool, and buffer reuse via the pinned-memory layer in
//! `zi-memory`.
//!
//! Two storage backends are provided:
//! * [`FileBackend`] — a real file accessed with positioned reads/writes
//!   from many threads; this is the closest laptop equivalent of an NVMe
//!   SSD and is what the benches measure.
//! * [`MemBackend`] — an in-memory device with byte counters and an
//!   optional failure injector, for deterministic tests.

pub mod backend;
pub mod engine;

pub use backend::{FileBackend, MemBackend, StorageBackend, ThrottledBackend};
pub use engine::{IoStats, NvmeEngine, Ticket};
