//! Retry policy for storage I/O: bounded exponential backoff with
//! deterministic jitter and a per-request deadline.
//!
//! Transient failures (see [`Error::is_transient`]) are retried up to
//! [`RetryPolicy::max_attempts`] times; backoff between attempts grows
//! exponentially with a seeded jitter so the sequence is reproducible
//! run-to-run yet decorrelated across requests. Two give-up paths exist,
//! both permanent:
//!
//! * attempts exhausted → [`Error::DeviceFailed`];
//! * the next backoff would overrun [`RetryPolicy::deadline`] →
//!   [`Error::Timeout`].
//!
//! The backoff sequence `backoff(1), backoff(2), …` is (provably)
//! monotone nondecreasing, bounded by [`RetryPolicy::max_backoff`], and
//! a pure function of `(jitter_seed, attempt)` — properties the chaos
//! suite checks with property tests.

use std::time::{Duration, Instant};

use zi_types::{Error, Result};

/// Retry configuration for one class of I/O requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per request, including the first (≥ 1).
    pub max_attempts: u32,
    /// Backoff before the second attempt; doubles each retry.
    pub base_backoff: Duration,
    /// Upper bound on any single backoff sleep.
    pub max_backoff: Duration,
    /// Wall-clock budget per request, covering attempts and backoff.
    pub deadline: Duration,
    /// Seed for the deterministic jitter stream.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(50),
            deadline: Duration::from_secs(10),
            jitter_seed: 0x0005_eedb_a5e0_f1e7,
        }
    }
}

/// splitmix64 finalizer over `(seed, attempt)` — the jitter stream.
fn jitter_hash(seed: u64, attempt: u32) -> u64 {
    let mut z = seed ^ (attempt as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Outcome of running an operation under a policy.
pub struct RetryReport<T> {
    /// Final result after all attempts.
    pub result: Result<T>,
    /// Number of retries performed (attempts − 1 on success; may be
    /// lower when a permanent error short-circuits).
    pub retries: u32,
    /// True if the policy gave up on a transient failure (exhausted
    /// attempts or hit the deadline) — the signal that the device
    /// should be declared dead.
    pub gave_up: bool,
}

impl RetryPolicy {
    /// A policy that never retries (single attempt, no backoff).
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
            deadline: Duration::from_secs(3600),
            jitter_seed: 0,
        }
    }

    /// Backoff before attempt `attempt + 1`, where `attempt ≥ 1` is the
    /// number of failures so far: `min(base·2^(attempt−1) + jitter,
    /// max_backoff)` with `jitter ∈ [0, base·2^(attempt−1)/4]` drawn
    /// deterministically from `(jitter_seed, attempt)`.
    pub fn backoff(&self, attempt: u32) -> Duration {
        debug_assert!(attempt >= 1, "backoff is only defined after a failure");
        let base = self.base_backoff.as_nanos();
        let raw = base.saturating_mul(1u128 << (attempt.saturating_sub(1)).min(63));
        let span = raw / 4 + 1;
        let jitter = jitter_hash(self.jitter_seed, attempt) as u128 % span;
        let total = raw.saturating_add(jitter).min(self.max_backoff.as_nanos());
        Duration::from_nanos(total.min(u64::MAX as u128) as u64)
    }

    /// Run `op` under this policy. Transient errors are retried with
    /// backoff; permanent errors and successes return immediately.
    ///
    /// `context` names the request in give-up errors (e.g. `"read 4096 B
    /// at 0x1000"`).
    pub fn run<T>(&self, context: &str, mut op: impl FnMut() -> Result<T>) -> RetryReport<T> {
        let start = Instant::now();
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            let err = match op() {
                Ok(v) => {
                    return RetryReport { result: Ok(v), retries: attempt - 1, gave_up: false }
                }
                Err(e) if !e.is_transient() => {
                    return RetryReport { result: Err(e), retries: attempt - 1, gave_up: false }
                }
                Err(e) => e,
            };
            if attempt >= self.max_attempts.max(1) {
                return RetryReport {
                    result: Err(Error::DeviceFailed(format!(
                        "{context}: retries exhausted after {attempt} attempts; last error: {err}"
                    ))),
                    retries: attempt - 1,
                    gave_up: true,
                };
            }
            let pause = self.backoff(attempt);
            if start.elapsed() + pause > self.deadline {
                return RetryReport {
                    result: Err(Error::Timeout {
                        context: format!("{context}: {err}"),
                        deadline: self.deadline,
                    }),
                    retries: attempt - 1,
                    gave_up: true,
                };
            }
            zi_sync::thread::sleep(pause);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_policy() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_micros(100),
            max_backoff: Duration::from_millis(2),
            deadline: Duration::from_secs(5),
            jitter_seed: 7,
        }
    }

    fn transient() -> Error {
        Error::Io(std::io::Error::other("flaky"))
    }

    #[test]
    fn succeeds_after_transient_failures() {
        let mut remaining = 2;
        let report = fast_policy().run("op", || {
            if remaining > 0 {
                remaining -= 1;
                Err(transient())
            } else {
                Ok(42)
            }
        });
        assert_eq!(report.result.unwrap(), 42);
        assert_eq!(report.retries, 2);
        assert!(!report.gave_up);
    }

    #[test]
    fn permanent_error_short_circuits() {
        let mut calls = 0;
        let report = fast_policy().run("op", || {
            calls += 1;
            Err::<(), _>(Error::shape("bad"))
        });
        assert!(matches!(report.result, Err(Error::ShapeMismatch { .. })));
        assert_eq!(calls, 1);
        assert!(!report.gave_up);
    }

    #[test]
    fn exhaustion_becomes_device_failed() {
        let report = fast_policy().run("read 8 B", || Err::<(), _>(transient()));
        let err = report.result.unwrap_err();
        assert!(matches!(err, Error::DeviceFailed(_)));
        assert!(err.to_string().contains("read 8 B"));
        assert_eq!(report.retries, 3); // 4 attempts = 3 retries
        assert!(report.gave_up);
    }

    #[test]
    fn deadline_becomes_timeout() {
        let policy = RetryPolicy {
            max_attempts: 1000,
            base_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(5),
            deadline: Duration::from_millis(12),
            jitter_seed: 1,
        };
        let start = Instant::now();
        let report = policy.run("slow op", || Err::<(), _>(transient()));
        assert!(matches!(report.result, Err(Error::Timeout { .. })));
        assert!(report.gave_up);
        // Never sleeps past the deadline: ~2 backoffs of 5 ms fit in 12 ms.
        assert!(start.elapsed() < Duration::from_millis(500));
    }

    #[test]
    fn backoff_is_monotone_bounded_deterministic() {
        let p = RetryPolicy::default();
        let seq: Vec<Duration> = (1..=20).map(|k| p.backoff(k)).collect();
        for w in seq.windows(2) {
            assert!(w[0] <= w[1], "monotone: {:?} > {:?}", w[0], w[1]);
        }
        assert!(seq.iter().all(|d| *d <= p.max_backoff));
        let again: Vec<Duration> = (1..=20).map(|k| p.backoff(k)).collect();
        assert_eq!(seq, again);
    }

    #[test]
    fn none_policy_gives_up_on_first_failure() {
        let report = RetryPolicy::none().run("op", || Err::<(), _>(transient()));
        assert!(report.gave_up);
        assert_eq!(report.retries, 0);
    }
}
