//! Arithmetic intensity of DL training (paper Sec. 4.1, Eq. 9–11).
//!
//! AIT = total computation / data movement, per state class. The paper
//! derives closed forms; we expose both the closed forms and the
//! first-principles ratios so tests can check they agree.

use crate::memory::TrainingShape;

/// AIT with respect to parameters and gradients, Eq. (9): `seq * bsz`.
///
/// Derivation: 4x parameter movement (2 loads + ckpt reload + 1 gradient
/// store) of 2-byte elements against `8 * bsz * seq * params` flops.
pub fn ait_params_grads(seq: u64, batch: u64) -> f64 {
    (seq * batch) as f64
}

/// AIT with respect to optimizer states, Eq. (10): `seq * bsz / 4`.
///
/// Optimizer states are ~16 bytes/param read and written once each.
pub fn ait_optimizer_states(seq: u64, batch: u64) -> f64 {
    (seq * batch) as f64 / 4.0
}

/// AIT with respect to activation checkpoints, Eq. (11): `24 * hd * ci`.
pub fn ait_activation_checkpoints(hidden: u64, ckpt_interval: u64) -> f64 {
    (24 * hidden * ckpt_interval) as f64
}

/// First-principles AIT for parameters/gradients: flops over the bytes
/// moved for parameters (3 loads with checkpointing) and gradients
/// (1 store), all fp16.
pub fn ait_params_grads_from_shape(t: &TrainingShape) -> f64 {
    let flops = t.flops_per_iter() as f64;
    let bytes = (2 * 4 * t.model.params()) as f64;
    flops / bytes
}

/// First-principles AIT for optimizer states: flops over one read + one
/// write of ~16 bytes per parameter.
pub fn ait_optimizer_from_shape(t: &TrainingShape) -> f64 {
    let flops = t.flops_per_iter() as f64;
    let bytes = (2 * 16 * t.model.params()) as f64;
    flops / bytes
}

/// First-principles AIT for activation checkpoints: flops over one store +
/// one load of the checkpoint bytes (Eq. 3).
pub fn ait_activations_from_shape(t: &TrainingShape) -> f64 {
    let flops = t.flops_per_iter() as f64;
    let bytes = (2 * t.activation_checkpoint_bytes()) as f64;
    flops / bytes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::ModelShape;

    fn shape(hidden: u64, batch: u64, seq: u64, ci: u64) -> TrainingShape {
        TrainingShape {
            model: ModelShape { layers: 50, hidden, attn_heads: 16 },
            batch,
            seq,
            ckpt_interval: ci,
        }
    }

    #[test]
    fn closed_forms_match_first_principles() {
        for (hd, bsz, seq, ci) in [(2048u64, 2u64, 1024u64, 1u64), (8192, 16, 1024, 2)] {
            let t = shape(hd, bsz, seq, ci);
            let a1 = ait_params_grads(seq, bsz);
            let a1_fp = ait_params_grads_from_shape(&t);
            assert!((a1 - a1_fp).abs() / a1 < 1e-9, "params: {a1} vs {a1_fp}");

            let a2 = ait_optimizer_states(seq, bsz);
            let a2_fp = ait_optimizer_from_shape(&t);
            assert!((a2 - a2_fp).abs() / a2 < 1e-9, "optim: {a2} vs {a2_fp}");

            let a3 = ait_activation_checkpoints(hd, ci);
            let a3_fp = ait_activations_from_shape(&t);
            assert!((a3 - a3_fp).abs() / a3 < 1e-9, "act: {a3} vs {a3_fp}");
        }
    }

    #[test]
    fn optimizer_needs_4x_bandwidth_of_params() {
        // Paper: "optimizer states require nearly 4x higher bandwidth".
        let r = ait_params_grads(1024, 2) / ait_optimizer_states(1024, 2);
        assert_eq!(r, 4.0);
    }

    #[test]
    fn activation_ait_is_independent_of_batch() {
        let t1 = shape(4096, 1, 1024, 1);
        let t2 = shape(4096, 16, 1024, 1);
        let a1 = ait_activations_from_shape(&t1);
        let a2 = ait_activations_from_shape(&t2);
        assert!((a1 - a2).abs() / a1 < 1e-9);
    }

    #[test]
    fn ait_scales_linearly() {
        assert_eq!(ait_params_grads(1024, 4), 2.0 * ait_params_grads(1024, 2));
        assert_eq!(
            ait_activation_checkpoints(16384, 1),
            2.0 * ait_activation_checkpoints(8192, 1)
        );
    }
}
