#![warn(missing_docs)]

//! Analytic memory and bandwidth model (paper Sections 3 and 4).
//!
//! Pure closed-form reproductions of every equation in the paper's
//! characterization sections: model-state memory (Eq. 1–2), activation
//! checkpoints (Eq. 3), working memory (Eq. 4–5), per-iteration compute
//! (Eq. 7–8), arithmetic intensity (Eq. 9–11) and the efficiency metric
//! (Eq. 6). These drive the Fig. 2a/2b tables, the Fig. 3 efficiency
//! curves, and the Table 3 future-hardware projection.
//!
//! # Example
//!
//! The Sec. 5.2.1 threshold — 70 GB/s sustains ≥50% efficiency for
//! parameters and gradients even at batch size 1:
//!
//! ```
//! use zi_perf::{ait_params_grads, efficiency::efficiency};
//!
//! let ait = ait_params_grads(1024, 1);
//! let e = efficiency(ait, 70e9, 70e12);
//! assert!(e >= 0.5);
//! ```

pub mod ait;
pub mod efficiency;
pub mod memory;
pub mod scaling;

pub use ait::{ait_activation_checkpoints, ait_optimizer_states, ait_params_grads};
pub use efficiency::{efficiency, EfficiencyPoint};
pub use memory::{ModelShape, TrainingShape};
pub use scaling::{bandwidth_requirements, HardwareGen};
