//! Memory requirement formulas (paper Sec. 3, Fig. 2a).

/// Architecture of a Transformer model, as the paper parameterizes it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelShape {
    /// Number of Transformer layers (`nl`).
    pub layers: u64,
    /// Hidden dimension (`hd`).
    pub hidden: u64,
    /// Attention heads.
    pub attn_heads: u64,
}

impl ModelShape {
    /// Total parameters, Eq. (1): `12 * nl * hd^2`.
    pub fn params(&self) -> u64 {
        12 * self.layers * self.hidden * self.hidden
    }

    /// Bytes of model states for mixed-precision Adam, Eq. (2):
    /// `240 * nl * hd^2` — i.e. 20 bytes per parameter (fp16 param + fp16
    /// grad + fp32 master/momentum/variance).
    pub fn model_state_bytes(&self) -> u64 {
        20 * self.params()
    }

    /// Model State Working Memory, Eq. (4): parameter + gradient bytes of
    /// the largest single operator, the `hd -> 4hd` linear.
    pub fn mswm_bytes(&self) -> u64 {
        4 * self.hidden * 4 * self.hidden
    }
}

/// A training configuration over a model shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrainingShape {
    /// Model architecture.
    pub model: ModelShape,
    /// Batch size (`bsz`).
    pub batch: u64,
    /// Sequence length (`seq`).
    pub seq: u64,
    /// Transformer blocks between two activation checkpoints (`ci`).
    pub ckpt_interval: u64,
}

impl TrainingShape {
    /// Bytes to store activation checkpoints, Eq. (3):
    /// `2 * bsz * seq * hd * nl / ci`.
    pub fn activation_checkpoint_bytes(&self) -> u64 {
        2 * self.batch * self.seq * self.model.hidden * self.model.layers / self.ckpt_interval
    }

    /// Total activation bytes without checkpointing (the `16 * hd` term of
    /// Eq. (5) summed over all layers, i.e. AWM with `ci = nl`).
    pub fn full_activation_bytes(&self) -> u64 {
        self.batch
            * self.seq
            * self.model.layers
            * (16 * self.model.hidden + 2 * self.model.attn_heads * self.seq)
    }

    /// Activation Working Memory, Eq. (5): activations between two
    /// consecutive checkpoints that must be recomputed and held.
    pub fn awm_bytes(&self) -> u64 {
        self.batch
            * self.seq
            * self.ckpt_interval
            * (16 * self.model.hidden + 2 * self.model.attn_heads * self.seq)
    }

    /// Total compute per iteration in flops, Eq. (7)–(8):
    /// `2 * 4 * bsz * seq * params` (forward + 2x backward + recompute).
    pub fn flops_per_iter(&self) -> u64 {
        8 * self.batch * self.seq * self.model.params()
    }
}

/// The five model configurations of Fig. 2a.
pub fn fig2a_rows() -> Vec<ModelShape> {
    vec![
        ModelShape { layers: 80, hidden: 10 * 1024, attn_heads: 128 },
        ModelShape { layers: 100, hidden: 20 * 1024, attn_heads: 160 },
        ModelShape { layers: 128, hidden: 25 * 1024, attn_heads: 256 },
        ModelShape { layers: 195, hidden: 64 * 1024, attn_heads: 512 },
        ModelShape { layers: 315, hidden: 160 * 1024, attn_heads: 1024 },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    const TB: f64 = 1e12;

    /// Fig. 2a row 3 is the ~1T parameter model: 128 layers, hd=25K.
    #[test]
    fn one_trillion_row_matches_paper() {
        let m = fig2a_rows()[2];
        let params = m.params() as f64;
        assert!((params / 1e12 - 1.01).abs() < 0.01, "params = {params}");
        // Column 5: 18.31 TB of model states.
        let states_tb = m.model_state_bytes() as f64 / TB;
        assert!((states_tb - 20.13).abs() < 0.5, "model states = {states_tb} TB");
    }

    /// All five Fig. 2a parameter counts (0.10T .. 101.47T).
    #[test]
    fn fig2a_param_column() {
        let expect = [0.10, 0.50, 1.01, 10.05, 101.47];
        for (m, e) in fig2a_rows().iter().zip(expect) {
            let t = m.params() as f64 / 1e12;
            assert!((t - e).abs() / e < 0.02, "params {t}T vs paper {e}T");
        }
    }

    /// Fig. 2a column 7: activation checkpoints for bsz=32, seq=1024, ci=1.
    #[test]
    fn fig2a_activation_checkpoint_column() {
        let expect_tb = [0.05, 0.12, 0.20, 0.76, 3.08];
        for (m, e) in fig2a_rows().iter().zip(expect_tb) {
            let t = TrainingShape { model: *m, batch: 32, seq: 1024, ckpt_interval: 1 };
            let tb = t.activation_checkpoint_bytes() as f64 / TB;
            assert!((tb - e).abs() / e < 0.15, "act ckpt {tb} TB vs paper {e} TB");
        }
    }

    /// MSWM for the 100B model (hd = 10K) is 1.6 GB; Fig. 2a column 8
    /// reports ~1.95 GB per GPU including the gradient. Our Eq. (4) value
    /// must grow into multiple GB beyond 100B parameters.
    #[test]
    fn mswm_grows_beyond_gigabytes() {
        let rows = fig2a_rows();
        let gb = |m: &ModelShape| m.mswm_bytes() as f64 / 1e9;
        assert!(gb(&rows[0]) > 1.0, "100B model MSWM {} GB", gb(&rows[0]));
        assert!(gb(&rows[3]) > 60.0, "10T model MSWM {} GB", gb(&rows[3]));
        // Monotone in hidden size.
        for w in rows.windows(2) {
            assert!(w[1].mswm_bytes() > w[0].mswm_bytes());
        }
    }

    /// Flops per iteration follows Eq. (8): `96 * bsz * seq * nl * hd^2`.
    #[test]
    fn flops_identity() {
        let m = ModelShape { layers: 10, hidden: 512, attn_heads: 8 };
        let t = TrainingShape { model: m, batch: 4, seq: 128, ckpt_interval: 1 };
        assert_eq!(t.flops_per_iter(), 96 * 4 * 128 * 10 * 512 * 512);
    }

    /// Checkpointing divides stored activations by ci and full activations
    /// dominate checkpointed ones.
    #[test]
    fn checkpoint_interval_scaling() {
        let m = ModelShape { layers: 24, hidden: 2048, attn_heads: 16 };
        let t1 = TrainingShape { model: m, batch: 8, seq: 1024, ckpt_interval: 1 };
        let t2 = TrainingShape { ckpt_interval: 2, ..t1 };
        assert_eq!(t1.activation_checkpoint_bytes(), 2 * t2.activation_checkpoint_bytes());
        assert!(t1.full_activation_bytes() > t1.activation_checkpoint_bytes());
        // AWM grows with ci (more layers to recompute and hold).
        assert!(t2.awm_bytes() > t1.awm_bytes());
    }
}
