//! The efficiency metric, Eq. (6), and the Fig. 3 curves.

/// One point on an efficiency-vs-bandwidth curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EfficiencyPoint {
    /// Available data-movement bandwidth in GB/s.
    pub bandwidth_gbps: f64,
    /// Predicted efficiency in `[0, 1]`.
    pub efficiency: f64,
}

/// Eq. (6): `efficiency = ait * bw / (ait * bw + peak_tp)`.
///
/// `ait` is dimensionless flops/byte, `bw` in bytes/s, `peak_tp` in
/// flops/s.
pub fn efficiency(ait: f64, bw_bytes_per_s: f64, peak_tp_flops: f64) -> f64 {
    let num = ait * bw_bytes_per_s;
    num / (num + peak_tp_flops)
}

/// Sweep a bandwidth range (GB/s) and produce the Fig. 3 curve for a
/// given AIT and achievable peak (flops/s).
pub fn efficiency_curve(
    ait: f64,
    peak_tp_flops: f64,
    bandwidths_gbps: &[f64],
) -> Vec<EfficiencyPoint> {
    bandwidths_gbps
        .iter()
        .map(|&gb| EfficiencyPoint {
            bandwidth_gbps: gb,
            efficiency: efficiency(ait, gb * 1e9, peak_tp_flops),
        })
        .collect()
}

/// Bandwidth (bytes/s) needed to reach a target efficiency — the inverse
/// of Eq. (6); used for the Sec. 5.2 thresholds and Table 3.
pub fn bandwidth_for_efficiency(ait: f64, peak_tp_flops: f64, target: f64) -> f64 {
    assert!((0.0..1.0).contains(&target), "target efficiency must be in [0,1)");
    // eff = ait*bw / (ait*bw + peak) ⇒ bw = peak * eff / (ait * (1 - eff)).
    peak_tp_flops * target / (ait * (1.0 - target))
}

/// The empirical achievable peak the paper uses for its V100 analysis:
/// 70 TFlops/GPU (Sec. 4.2).
pub const V100_PEAK_TP: f64 = 70e12;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ait::{ait_activation_checkpoints, ait_optimizer_states, ait_params_grads};

    #[test]
    fn efficiency_limits() {
        assert_eq!(efficiency(100.0, 0.0, V100_PEAK_TP), 0.0);
        let e = efficiency(1024.0, 1e15, V100_PEAK_TP);
        assert!(e > 0.9);
        // Monotone in bandwidth.
        let lo = efficiency(1024.0, 1e9, V100_PEAK_TP);
        let hi = efficiency(1024.0, 1e10, V100_PEAK_TP);
        assert!(hi > lo);
    }

    /// Sec. 5.2.1: ~70 GB/s for params/grads gives >=50% efficiency even at
    /// batch size 1 (ait = seq * bsz = 1024).
    #[test]
    fn params_threshold_70gbps() {
        let ait = ait_params_grads(1024, 1);
        let e = efficiency(ait, 70e9, V100_PEAK_TP);
        assert!(e >= 0.5, "70 GB/s at bsz=1 gives {e}");
        // And well below 50% at 10 GB/s (single PCIe link).
        let e_pcie = efficiency(ait, 12e9, V100_PEAK_TP);
        assert!(e_pcie < 0.2, "single PCIe gives {e_pcie}");
    }

    /// Sec. 5.2.2: ~1.5 TB/s for optimizer states at batch 2 for 90%.
    #[test]
    fn optimizer_threshold_1_5tbps() {
        let ait = ait_optimizer_states(1024, 2);
        let bw = bandwidth_for_efficiency(ait, V100_PEAK_TP, 0.9);
        let tbps = bw / 1e12;
        assert!(
            (1.0..2.0).contains(&tbps),
            "90% efficiency needs {tbps} TB/s, paper says ~1.5"
        );
    }

    /// Sec. 5.2.3 / Fig. 3c: ~2 GB/s sustains >=50% for hidden 2K, and
    /// under 1 GB/s suffices for hidden >= 8K.
    #[test]
    fn activation_thresholds() {
        let ait_2k = ait_activation_checkpoints(2048, 1);
        assert!(efficiency(ait_2k, 2e9, V100_PEAK_TP) >= 0.5);
        let ait_8k = ait_activation_checkpoints(8192, 1);
        let need = bandwidth_for_efficiency(ait_8k, V100_PEAK_TP, 0.5);
        assert!(need < 1e9, "hd=8K needs {} GB/s", need / 1e9);
    }

    #[test]
    fn inverse_round_trips() {
        for target in [0.1, 0.5, 0.9, 0.99] {
            let ait = 512.0;
            let bw = bandwidth_for_efficiency(ait, V100_PEAK_TP, target);
            let e = efficiency(ait, bw, V100_PEAK_TP);
            assert!((e - target).abs() < 1e-9);
        }
    }

    #[test]
    fn curve_is_sorted_and_bounded() {
        let c = efficiency_curve(1024.0, V100_PEAK_TP, &[1.0, 10.0, 100.0, 1000.0]);
        assert_eq!(c.len(), 4);
        for w in c.windows(2) {
            assert!(w[1].efficiency > w[0].efficiency);
        }
        assert!(c.iter().all(|p| (0.0..=1.0).contains(&p.efficiency)));
    }
}
