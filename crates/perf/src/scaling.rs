//! Future-hardware bandwidth projection (paper Table 3, Sec. 9).

use crate::ait::{ait_activation_checkpoints, ait_params_grads};
use crate::efficiency::bandwidth_for_efficiency;

/// One accelerator generation in the Table 3 projection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HardwareGen {
    /// Label ("V100", "10x", "100x").
    pub name: &'static str,
    /// Achievable peak per device, flops/s.
    pub peak_tp: f64,
}

/// Bandwidth requirements for one generation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BandwidthRequirement {
    /// Generation described.
    pub gen: HardwareGen,
    /// Slow-memory bandwidth needed per device, GB/s (optimizer/parameter
    /// traffic to CPU/NVMe at the paper's operating point).
    pub slow_memory_gbps: f64,
    /// Aggregate slow-memory bandwidth across `devices`, TB/s.
    pub slow_memory_aggregate_tbps: f64,
    /// GPU-to-GPU bandwidth needed, GB/s (parameter/gradient allgather
    /// traffic at ~50% efficiency, batch 1).
    pub gpu_gpu_gbps: f64,
}

/// The three generations of Table 3.
pub fn table3_generations() -> Vec<HardwareGen> {
    vec![
        HardwareGen { name: "V100", peak_tp: 0.07e15 },
        HardwareGen { name: "10x", peak_tp: 0.70e15 },
        HardwareGen { name: "100x", peak_tp: 7.00e15 },
    ]
}

/// Reproduce Table 3 for a cluster of `devices` accelerators.
///
/// The paper's slow-memory row (3 GB/s per device on V100) is the per-GPU
/// CPU-memory bandwidth needed to stream activation checkpoints and
/// optimizer state without stalling; it scales linearly with peak compute
/// (Eq. 6 with fixed AIT). The GPU-GPU row (70 GB/s on V100) is the
/// parameter/gradient bandwidth for ≥50% efficiency at batch 1.
pub fn bandwidth_requirements(devices: u64) -> Vec<BandwidthRequirement> {
    let v100 = table3_generations()[0];
    table3_generations()
        .into_iter()
        .map(|gen| {
            let scale = gen.peak_tp / v100.peak_tp;
            // V100 anchors: 3 GB/s slow memory (Fig. 2b per-GPU CPU
            // bandwidth), 70 GB/s GPU-GPU (Sec. 5.2.1). Both scale with
            // compute because Eq. (6) is linear in peak_tp at fixed
            // efficiency and AIT.
            let slow = 3.0 * scale;
            let gg = gpu_gpu_requirement(gen.peak_tp);
            BandwidthRequirement {
                gen,
                slow_memory_gbps: slow,
                slow_memory_aggregate_tbps: slow * devices as f64 / 1000.0,
                gpu_gpu_gbps: gg,
            }
        })
        .collect()
}

/// GPU-GPU bandwidth for 50% efficiency at seq=1024, batch 1 (GB/s).
fn gpu_gpu_requirement(peak_tp: f64) -> f64 {
    let ait = ait_params_grads(1024, 1);
    bandwidth_for_efficiency(ait, peak_tp, 0.5) / 1e9
}

/// Per-device slow-memory bandwidth (GB/s) needed to stream activation
/// checkpoints at 50% efficiency — an alternative derivation used to
/// sanity-check the Table 3 anchor.
pub fn activation_bandwidth_requirement(peak_tp: f64, hidden: u64) -> f64 {
    let ait = ait_activation_checkpoints(hidden, 1);
    bandwidth_for_efficiency(ait, peak_tp, 0.5) / 1e9
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_rows_match_paper() {
        let rows = bandwidth_requirements(512);
        assert_eq!(rows.len(), 3);
        // Row "V100": 3 GB/s per device, 1.5 TB/s aggregate, 70 GB/s gg.
        let v = &rows[0];
        assert!((v.slow_memory_gbps - 3.0).abs() < 1e-9);
        assert!((v.slow_memory_aggregate_tbps - 1.536).abs() < 0.05);
        assert!((v.gpu_gpu_gbps - 70.0).abs() / 70.0 < 0.03, "gg = {}", v.gpu_gpu_gbps);
        // Rows scale 10x and 100x.
        assert!((rows[1].slow_memory_gbps - 30.0).abs() < 1e-9);
        assert!((rows[2].slow_memory_gbps - 300.0).abs() < 1e-9);
        assert!((rows[1].gpu_gpu_gbps / v.gpu_gpu_gbps - 10.0).abs() < 1e-6);
        assert!((rows[2].gpu_gpu_gbps / v.gpu_gpu_gbps - 100.0).abs() < 1e-6);
    }

    #[test]
    fn activation_anchor_is_consistent() {
        // On V100-class hardware, hd=32K activation streaming needs well
        // under 3 GB/s — the Table 3 slow-memory anchor is conservative.
        let need = activation_bandwidth_requirement(0.07e15, 32 * 1024);
        assert!(need < 3.0, "needs {need} GB/s");
    }
}
