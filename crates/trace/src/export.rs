//! Chrome-trace (`chrome://tracing` / Perfetto "JSON Array Format")
//! export, plus a minimal JSON parser so the exported trace can be
//! validated in-process (the workspace has no serde).
//!
//! Spans export as `"ph": "X"` (complete) events with microsecond
//! timestamps; instantaneous events as `"ph": "i"`. Counter snapshots
//! ride along in a top-level `"counters"` object that Chrome ignores
//! but [`parse_chrome_trace`] surfaces.

use crate::{Category, CounterSnapshot, Event};

/// Render `events` and a counter snapshot as Chrome-trace JSON.
pub fn chrome_trace_json(events: &[Event], counters: &CounterSnapshot) -> String {
    let mut out = String::with_capacity(events.len() * 96 + 1024);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    for (i, ev) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let ph = if ev.dur_ns == 0 { "i" } else { "X" };
        out.push_str("{\"name\":");
        push_json_str(&mut out, ev.name);
        out.push_str(",\"cat\":");
        push_json_str(&mut out, ev.cat.label());
        out.push_str(&format!(
            ",\"ph\":\"{ph}\",\"ts\":{},\"dur\":{},\"pid\":0,\"tid\":{},\
             \"args\":{{\"bytes\":{},\"flops\":{},\"id\":{}}}",
            fmt_f64(ev.start_ns as f64 / 1e3),
            fmt_f64(ev.dur_ns as f64 / 1e3),
            ev.tid,
            ev.bytes,
            ev.flops,
            ev.id,
        ));
        if ev.dur_ns == 0 {
            // Instant events need a scope; "t" = thread.
            out.push_str(",\"s\":\"t\"");
        }
        out.push('}');
    }
    out.push_str("],\"counters\":{");
    let c = counters;
    let fields: [(&str, u64); 19] = [
        ("nc_read_bytes", c.nc_read_bytes),
        ("nc_write_bytes", c.nc_write_bytes),
        ("cg_bytes", c.cg_bytes),
        ("gg_bytes", c.gg_bytes),
        ("rs_bytes", c.rs_bytes),
        ("ckpt_bytes", c.ckpt_bytes),
        ("prefetch_issued", c.prefetch_issued),
        ("prefetch_hits", c.prefetch_hits),
        ("prefetch_misses", c.prefetch_misses),
        ("prefetch_late", c.prefetch_late),
        ("prefetch_coalesced", c.prefetch_coalesced),
        ("retries", c.retries),
        ("degraded_transitions", c.degraded_transitions),
        ("wb_stalls", c.wb_stalls),
        ("pinned_waits", c.pinned_waits),
        ("pinned_acquires", c.pinned_acquires),
        ("io_in_flight", c.io_in_flight),
        ("io_in_flight_peak", c.io_in_flight_peak),
        ("events_dropped", c.events_dropped),
    ];
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_str(&mut out, k);
        out.push_str(&format!(":{v}"));
    }
    out.push_str("}}\n");
    out
}

fn fmt_f64(v: f64) -> String {
    // Chrome accepts any finite number; keep sub-microsecond precision.
    format!("{v:.3}")
}

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parsed JSON value (the subset the trace format uses).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, insertion-ordered.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Look up a field of an object.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => {
                fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
            }
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Parse a JSON document. Errors carry a byte offset and a reason.
pub fn parse_json(input: &str) -> Result<JsonValue, String> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, what: &str) -> String {
        format!("json parse error at byte {}: {what}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("non-ascii number"))?;
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| self.err(&format!("bad number '{text}'")))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect_byte(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'u') => {
                            if self.pos + 5 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex =
                                std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                    .map_err(|_| self.err("non-utf8 \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let ch = rest.chars().next().ok_or_else(|| self.err("unterminated string"))?;
                    s.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect_byte(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// One event read back out of a Chrome-trace document.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedSpan {
    /// Event name.
    pub name: String,
    /// Category (a [`Category::label`] string).
    pub cat: String,
    /// Phase: `"X"` for spans, `"i"` for instants.
    pub ph: String,
    /// Start, microseconds.
    pub ts_us: f64,
    /// Duration, microseconds (0 for instants).
    pub dur_us: f64,
    /// Recording thread id.
    pub tid: u64,
    /// Payload bytes from `args`.
    pub bytes: u64,
    /// Floating-point operation count from `args`.
    pub flops: u64,
    /// Correlation id from `args`.
    pub id: u64,
}

/// A fully parsed Chrome trace: events plus the counter sidecar.
#[derive(Debug, Clone, Default)]
pub struct ChromeTrace {
    /// All `traceEvents`, in document order.
    pub spans: Vec<ParsedSpan>,
    /// The `counters` object, as `(name, value)` pairs.
    pub counters: Vec<(String, f64)>,
}

impl ChromeTrace {
    /// Number of duration (`"X"`) spans whose category is `cat`.
    pub fn span_count(&self, cat: Category) -> usize {
        self.spans.iter().filter(|s| s.ph == "X" && s.cat == cat.label()).count()
    }

    /// Value of counter `name`, if present.
    pub fn counter(&self, name: &str) -> Option<f64> {
        self.counters.iter().find(|(k, _)| k == name).map(|(_, v)| *v)
    }
}

/// Parse a Chrome-trace document produced by [`chrome_trace_json`]
/// (or by hand, as long as `traceEvents` is present).
pub fn parse_chrome_trace(input: &str) -> Result<ChromeTrace, String> {
    let doc = parse_json(input)?;
    let events = doc
        .get("traceEvents")
        .ok_or_else(|| "missing traceEvents".to_string())?;
    let items = match events {
        JsonValue::Arr(items) => items,
        _ => return Err("traceEvents is not an array".to_string()),
    };
    let mut spans = Vec::with_capacity(items.len());
    for ev in items {
        let field_str = |k: &str| {
            ev.get(k).and_then(JsonValue::as_str).map(str::to_string)
        };
        let field_num =
            |k: &str| ev.get(k).and_then(JsonValue::as_f64).unwrap_or(0.0);
        let args_num = |k: &str| {
            ev.get("args").and_then(|a| a.get(k)).and_then(JsonValue::as_f64).unwrap_or(0.0)
        };
        spans.push(ParsedSpan {
            name: field_str("name").ok_or_else(|| "event missing name".to_string())?,
            cat: field_str("cat").unwrap_or_default(),
            ph: field_str("ph").unwrap_or_default(),
            ts_us: field_num("ts"),
            dur_us: field_num("dur"),
            tid: field_num("tid") as u64,
            bytes: args_num("bytes") as u64,
            flops: args_num("flops") as u64,
            id: args_num("id") as u64,
        });
    }
    let counters = match doc.get("counters") {
        Some(JsonValue::Obj(fields)) => fields
            .iter()
            .filter_map(|(k, v)| v.as_f64().map(|n| (k.clone(), n)))
            .collect(),
        _ => Vec::new(),
    };
    Ok(ChromeTrace { spans, counters })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Counter, Tracer};

    #[test]
    fn chrome_trace_round_trips_through_the_parser() {
        let t = Tracer::new();
        {
            let mut s = t.span(Category::NcTransfer, "nc.read");
            s.set_bytes(4096);
            s.set_id(11);
            zi_sync::thread::sleep(std::time::Duration::from_millis(1));
        }
        {
            let _s = t.span(Category::Compute, "adam_chunk");
            zi_sync::thread::sleep(std::time::Duration::from_millis(1));
        }
        t.instant(Category::Retry, "io.retry", 0, 2);
        t.count(Counter::NcReadBytes, 4096);
        let events = t.take_events();
        let json = chrome_trace_json(&events, &t.snapshot());
        let trace = parse_chrome_trace(&json).expect("parse back");
        assert_eq!(trace.spans.len(), events.len());
        assert_eq!(trace.span_count(Category::NcTransfer), 1);
        assert_eq!(trace.span_count(Category::Compute), 1);
        let nc = trace.spans.iter().find(|s| s.name == "nc.read").unwrap();
        assert_eq!((nc.bytes, nc.id, nc.ph.as_str()), (4096, 11, "X"));
        assert!(nc.dur_us >= 1000.0, "1ms sleep shows up in dur: {}", nc.dur_us);
        let retry = trace.spans.iter().find(|s| s.name == "io.retry").unwrap();
        assert_eq!(retry.ph, "i");
        assert_eq!(trace.counter("nc_read_bytes"), Some(4096.0));
        assert_eq!(trace.counter("events_dropped"), Some(0.0));
    }

    #[test]
    fn parser_handles_escapes_nesting_and_rejects_garbage() {
        let v = parse_json(r#"{"a":[1,-2.5,true,null,"x\"y\nA"],"b":{}}"#).unwrap();
        let arr = match v.get("a") {
            Some(JsonValue::Arr(items)) => items,
            other => panic!("expected array, got {other:?}"),
        };
        assert_eq!(arr[0], JsonValue::Num(1.0));
        assert_eq!(arr[1], JsonValue::Num(-2.5));
        assert_eq!(arr[4], JsonValue::Str("x\"y\nA".to_string()));
        assert!(parse_json("{\"a\":}").is_err());
        assert!(parse_json("[1,2").is_err());
        assert!(parse_json("{} trailing").is_err());
        assert!(parse_chrome_trace("{\"notTraceEvents\":[]}").is_err());
    }

    #[test]
    fn empty_trace_exports_and_parses() {
        let json = chrome_trace_json(&[], &CounterSnapshot::default());
        let trace = parse_chrome_trace(&json).expect("parse");
        assert!(trace.spans.is_empty());
        assert_eq!(trace.counter("cg_bytes"), Some(0.0));
    }
}
