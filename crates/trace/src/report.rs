//! Per-step overlap-efficiency and bandwidth report.
//!
//! Folds a flat event stream into the numbers the paper's overlap
//! argument is made of. For each hop `h` (nc, cg, gg, cp):
//!
//! * `busy(h)` — wall-clock length of the *union* of `h`'s span
//!   intervals across all threads: the time at least one `h` transfer
//!   was in flight.
//! * `hidden(h)` — length of the intersection of that union with the
//!   compute union (all [`Category::Compute`] spans except the
//!   [`crate::STEP_SPAN`] envelopes, which merely delimit steps).
//! * **overlap efficiency** `= hidden(h) / busy(h)` — the fraction of
//!   `h`'s I/O time the pipeline hid behind compute. 1.0 means fully
//!   hidden; 0.0 means every byte stalled the step.
//! * **effective bandwidth** `= bytes(h) / busy(h)` — per-tier
//!   bandwidth actually achieved, the quantity ZeRO-Infinity's
//!   feasibility tables are built from.
//!
//! Steps are delimited by `STEP_SPAN` envelope spans (`id` = step);
//! metrics are reported per step (clipped to the step window) and for
//! the whole run.

use std::collections::BTreeMap;

use crate::{Category, Event, STEP_SPAN};

/// Metrics for one hop over one window.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct HopReport {
    /// Hop name: `"nc"`, `"cg"`, `"gg"`, or `"cp"`.
    pub hop: &'static str,
    /// Payload bytes moved by spans overlapping the window.
    pub bytes: u64,
    /// Union length of the hop's spans, ns.
    pub busy_ns: u64,
    /// Portion of `busy_ns` overlapped with compute, ns.
    pub hidden_ns: u64,
}

impl HopReport {
    /// `hidden / busy`; vacuously 1.0 when the hop did no I/O.
    pub fn efficiency(&self) -> f64 {
        if self.busy_ns == 0 {
            1.0
        } else {
            self.hidden_ns as f64 / self.busy_ns as f64
        }
    }

    /// Effective bandwidth in bytes/second (0 when idle).
    pub fn bandwidth_bps(&self) -> f64 {
        if self.busy_ns == 0 {
            0.0
        } else {
            self.bytes as f64 / (self.busy_ns as f64 / 1e9)
        }
    }
}

/// Metrics for one optimizer step.
#[derive(Debug, Clone)]
pub struct StepReport {
    /// Step number (the envelope span's `id`).
    pub step: u64,
    /// Window start, ns (earliest envelope start across ranks).
    pub start_ns: u64,
    /// Window end, ns (latest envelope end across ranks).
    pub end_ns: u64,
    /// Length of the compute union inside the window, ns.
    pub compute_ns: u64,
    /// Per-hop metrics clipped to the window, in `[nc, cg, gg, cp]`
    /// order.
    pub hops: [HopReport; 4],
}

/// The full report: one entry per step plus run totals.
#[derive(Debug, Clone, Default)]
pub struct OverlapReport {
    /// Per-step metrics, ordered by step number.
    pub steps: Vec<StepReport>,
    /// Whole-run metrics (unclipped), in `[nc, cg, gg, cp]` order.
    pub totals: [HopReport; 4],
    /// Whole-run compute union length, ns.
    pub compute_ns: u64,
}

// cp (the CPU-DRAM placement path) is appended last so the established
// positions — totals[0] = nc in particular, which `zi-core`'s telemetry
// cursor reads — stay valid.
const HOPS: [(&str, &[Category]); 4] = [
    ("nc", &[Category::NcTransfer]),
    ("cg", &[Category::CgTransfer]),
    ("gg", &[Category::Allgather, Category::ReduceScatter]),
    ("cp", &[Category::CpTransfer]),
];

fn is_envelope(e: &Event) -> bool {
    e.cat == Category::Compute && e.name == STEP_SPAN
}

fn is_compute(e: &Event) -> bool {
    e.cat == Category::Compute && e.name != STEP_SPAN && e.dur_ns > 0
}

/// Collapse raw `(start, end)` intervals into a sorted disjoint union.
fn union_intervals(mut iv: Vec<(u64, u64)>) -> Vec<(u64, u64)> {
    iv.retain(|(s, e)| e > s);
    iv.sort_unstable();
    let mut out: Vec<(u64, u64)> = Vec::with_capacity(iv.len());
    for (s, e) in iv {
        match out.last_mut() {
            Some((_, last_e)) if s <= *last_e => *last_e = (*last_e).max(e),
            _ => out.push((s, e)),
        }
    }
    out
}

fn total_len(iv: &[(u64, u64)]) -> u64 {
    iv.iter().map(|(s, e)| e - s).sum()
}

/// Length of the intersection of two disjoint sorted unions.
fn intersect_len(a: &[(u64, u64)], b: &[(u64, u64)]) -> u64 {
    let (mut i, mut j, mut acc) = (0usize, 0usize, 0u64);
    while i < a.len() && j < b.len() {
        let lo = a[i].0.max(b[j].0);
        let hi = a[i].1.min(b[j].1);
        if hi > lo {
            acc += hi - lo;
        }
        if a[i].1 <= b[j].1 {
            i += 1;
        } else {
            j += 1;
        }
    }
    acc
}

/// Clip a disjoint sorted union to `[lo, hi)`.
fn clip(iv: &[(u64, u64)], lo: u64, hi: u64) -> Vec<(u64, u64)> {
    iv.iter()
        .filter_map(|&(s, e)| {
            let (s, e) = (s.max(lo), e.min(hi));
            (e > s).then_some((s, e))
        })
        .collect()
}

fn hop_report(
    hop: &'static str,
    spans: &[(u64, u64, u64)], // (start, end, bytes)
    compute: &[(u64, u64)],
    window: Option<(u64, u64)>,
) -> HopReport {
    let in_window = |s: u64, e: u64| match window {
        Some((lo, hi)) => s < hi && e > lo,
        None => true,
    };
    let bytes = spans.iter().filter(|&&(s, e, _)| in_window(s, e.max(s + 1))).map(|&(_, _, b)| b).sum();
    let mut union = union_intervals(
        spans.iter().filter(|&&(s, e, _)| e > s).map(|&(s, e, _)| (s, e)).collect(),
    );
    let compute = match window {
        Some((lo, hi)) => {
            union = clip(&union, lo, hi);
            clip(compute, lo, hi)
        }
        None => compute.to_vec(),
    };
    HopReport {
        hop,
        bytes,
        busy_ns: total_len(&union),
        hidden_ns: intersect_len(&union, &compute),
    }
}

impl OverlapReport {
    /// Build the report from a flat event stream (any order).
    pub fn from_events(events: &[Event]) -> OverlapReport {
        // Step windows: envelope spans grouped by id, widened across ranks.
        let mut windows: BTreeMap<u64, (u64, u64)> = BTreeMap::new();
        for e in events.iter().filter(|e| is_envelope(e)) {
            let end = e.start_ns + e.dur_ns;
            windows
                .entry(e.id)
                .and_modify(|w| {
                    w.0 = w.0.min(e.start_ns);
                    w.1 = w.1.max(end);
                })
                .or_insert((e.start_ns, end));
        }
        let compute = union_intervals(
            events
                .iter()
                .filter(|e| is_compute(e))
                .map(|e| (e.start_ns, e.start_ns + e.dur_ns))
                .collect(),
        );
        let hop_spans: Vec<Vec<(u64, u64, u64)>> = HOPS
            .iter()
            .map(|(_, cats)| {
                events
                    .iter()
                    .filter(|e| cats.contains(&e.cat) && e.dur_ns > 0)
                    .map(|e| (e.start_ns, e.start_ns + e.dur_ns, e.bytes))
                    .collect()
            })
            .collect();
        let mk = |window: Option<(u64, u64)>| -> [HopReport; 4] {
            [
                hop_report(HOPS[0].0, &hop_spans[0], &compute, window),
                hop_report(HOPS[1].0, &hop_spans[1], &compute, window),
                hop_report(HOPS[2].0, &hop_spans[2], &compute, window),
                hop_report(HOPS[3].0, &hop_spans[3], &compute, window),
            ]
        };
        let steps = windows
            .iter()
            .map(|(&step, &(lo, hi))| StepReport {
                step,
                start_ns: lo,
                end_ns: hi,
                compute_ns: total_len(&clip(&compute, lo, hi)),
                hops: mk(Some((lo, hi))),
            })
            .collect();
        OverlapReport { steps, totals: mk(None), compute_ns: total_len(&compute) }
    }

    /// True when no hop moved any bytes anywhere in the run.
    pub fn is_empty(&self) -> bool {
        self.totals.iter().all(|h| h.bytes == 0 && h.busy_ns == 0)
    }

    /// Render the human-readable per-step + totals table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let header = format!(
            "{:>6} {:>4} {:>12} {:>10} {:>10} {:>6} {:>10}\n",
            "step", "hop", "bytes", "busy(ms)", "hidden(ms)", "eff", "MB/s"
        );
        out.push_str(&header);
        let push_hops = |label: &str, hops: &[HopReport; 4], out: &mut String| {
            for h in hops {
                out.push_str(&format!(
                    "{:>6} {:>4} {:>12} {:>10.3} {:>10.3} {:>6.2} {:>10.1}\n",
                    label,
                    h.hop,
                    h.bytes,
                    h.busy_ns as f64 / 1e6,
                    h.hidden_ns as f64 / 1e6,
                    h.efficiency(),
                    h.bandwidth_bps() / 1e6,
                ));
            }
        };
        for s in &self.steps {
            push_hops(&s.step.to_string(), &s.hops, &mut out);
        }
        push_hops("total", &self.totals, &mut out);
        out.push_str(&format!("compute (non-envelope) union: {:.3} ms\n", self.compute_ns as f64 / 1e6));
        out
    }
}

/// Aggregate throughput numbers for one named compute kernel.
///
/// Built from [`Category::Compute`] spans by [`compute_kernel_stats`];
/// `bytes` and `flops` are whatever the kernels attached via
/// [`crate::Span::set_bytes`] / [`crate::Span::set_flops`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct KernelStat {
    /// Static span name, e.g. `"tile_matmul"`.
    pub name: &'static str,
    /// Number of spans folded in.
    pub spans: u64,
    /// Summed span duration, ns.
    pub total_ns: u64,
    /// Summed payload bytes.
    pub bytes: u64,
    /// Summed floating-point operations.
    pub flops: u64,
}

impl KernelStat {
    /// Effective memory throughput in GB/s (0 when no time was recorded).
    pub fn gbps(&self) -> f64 {
        if self.total_ns == 0 {
            return 0.0;
        }
        self.bytes as f64 / self.total_ns as f64
    }

    /// Effective arithmetic throughput in GFLOP/s (0 when no time was
    /// recorded).
    pub fn gflops(&self) -> f64 {
        if self.total_ns == 0 {
            return 0.0;
        }
        self.flops as f64 / self.total_ns as f64
    }
}

/// Fold per-kernel compute throughput out of a flat event stream.
///
/// Groups [`Category::Compute`] duration spans (skipping the
/// [`STEP_SPAN`] envelopes) by name and sums their time, bytes and
/// flops. Returns stats sorted by descending total time, so the
/// dominant kernel leads — this is what `zi-adapt` and the kernel
/// bench read to judge the compute/I/O balance.
pub fn compute_kernel_stats(events: &[Event]) -> Vec<KernelStat> {
    let mut by_name: BTreeMap<&'static str, KernelStat> = BTreeMap::new();
    for e in events {
        if e.cat != Category::Compute || e.name == STEP_SPAN || e.dur_ns == 0 {
            continue;
        }
        let st = by_name.entry(e.name).or_insert(KernelStat { name: e.name, ..KernelStat::default() });
        st.spans += 1;
        st.total_ns += e.dur_ns;
        st.bytes += e.bytes;
        st.flops += e.flops;
    }
    let mut out: Vec<KernelStat> = by_name.into_values().collect();
    out.sort_by_key(|st| std::cmp::Reverse(st.total_ns));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(cat: Category, name: &'static str, start: u64, dur: u64, bytes: u64, id: u64) -> Event {
        Event { cat, name, start_ns: start, dur_ns: dur, bytes, flops: 0, id, tid: 0 }
    }

    #[test]
    fn kernel_stats_fold_compute_spans_by_name() {
        let mut e1 = ev(Category::Compute, "tile_matmul", 0, 10, 100, 0);
        e1.flops = 2_000;
        let mut e2 = ev(Category::Compute, "tile_matmul", 20, 30, 300, 1);
        e2.flops = 6_000;
        let e3 = ev(Category::Compute, STEP_SPAN, 0, 100, 0, 0); // envelope: skipped
        let e4 = ev(Category::NcTransfer, "nc.read", 0, 50, 999, 0); // not compute
        let mut e5 = ev(Category::Compute, "adam_chunk", 5, 5, 40, 0);
        e5.flops = 150;
        let stats = compute_kernel_stats(&[e1, e2, e3, e4, e5]);
        assert_eq!(stats.len(), 2);
        // Sorted by descending total time: tile_matmul (40ns) first.
        assert_eq!(stats[0].name, "tile_matmul");
        assert_eq!((stats[0].spans, stats[0].total_ns, stats[0].bytes, stats[0].flops), (2, 40, 400, 8_000));
        // bytes/ns == GB/s numerically: 400 bytes / 40 ns = 10 GB/s.
        assert!((stats[0].gbps() - 10.0).abs() < 1e-12);
        assert!((stats[0].gflops() - 200.0).abs() < 1e-12);
        assert_eq!(stats[1].name, "adam_chunk");
        assert_eq!(stats[1].total_ns, 5);
    }

    #[test]
    fn half_overlapped_io_scores_point_five() {
        // io [0,10), compute [5,15): hidden 5 of 10 busy.
        let events = vec![
            ev(Category::NcTransfer, "nc.read", 0, 10, 1000, 0),
            ev(Category::Compute, "adam_chunk", 5, 10, 0, 0),
        ];
        let r = OverlapReport::from_events(&events);
        let nc = r.totals[0];
        assert_eq!((nc.busy_ns, nc.hidden_ns, nc.bytes), (10, 5, 1000));
        assert!((nc.efficiency() - 0.5).abs() < 1e-9);
        // 1000 bytes in 10 ns = 1e11 B/s.
        assert!((nc.bandwidth_bps() - 1e11).abs() < 1.0);
    }

    #[test]
    fn overlapping_spans_union_not_sum() {
        // Two overlapping nc reads [0,10) and [5,15): busy is 15, not 20.
        let events = vec![
            ev(Category::NcTransfer, "nc.read", 0, 10, 100, 0),
            ev(Category::NcTransfer, "nc.read", 5, 10, 100, 1),
        ];
        let r = OverlapReport::from_events(&events);
        assert_eq!(r.totals[0].busy_ns, 15);
        assert_eq!(r.totals[0].bytes, 200);
    }

    #[test]
    fn envelope_spans_delimit_steps_but_are_not_compute() {
        let events = vec![
            // Step 0 envelope [0,100); inside it: io [10,30), compute [20,40).
            ev(Category::Compute, STEP_SPAN, 0, 100, 0, 0),
            ev(Category::NcTransfer, "nc.read", 10, 20, 64, 0),
            ev(Category::Compute, "fwdbwd", 20, 20, 0, 0),
            // Step 1 envelope [100,200); io [110,120) with no compute.
            ev(Category::Compute, STEP_SPAN, 100, 100, 0, 1),
            ev(Category::CgTransfer, "cg.upload", 110, 10, 32, 0),
        ];
        let r = OverlapReport::from_events(&events);
        assert_eq!(r.steps.len(), 2);
        let s0 = &r.steps[0];
        assert_eq!((s0.step, s0.start_ns, s0.end_ns), (0, 0, 100));
        // If the envelope counted as compute, hidden would be 20/20.
        assert_eq!((s0.hops[0].busy_ns, s0.hops[0].hidden_ns), (20, 10));
        let s1 = &r.steps[1];
        assert_eq!(s1.hops[1].busy_ns, 10);
        assert_eq!(s1.hops[1].hidden_ns, 0);
        assert_eq!(s1.hops[1].efficiency(), 0.0);
        // Step 0's cg hop saw no traffic: vacuous efficiency 1.0.
        assert_eq!(s0.hops[1].efficiency(), 1.0);
    }

    #[test]
    fn multi_rank_envelopes_widen_the_step_window() {
        let events = vec![
            ev(Category::Compute, STEP_SPAN, 0, 50, 0, 0),  // rank 0
            ev(Category::Compute, STEP_SPAN, 10, 70, 0, 0), // rank 1, same step
        ];
        let r = OverlapReport::from_events(&events);
        assert_eq!(r.steps.len(), 1);
        assert_eq!((r.steps[0].start_ns, r.steps[0].end_ns), (0, 80));
    }

    #[test]
    fn gg_hop_merges_allgather_and_reduce_scatter() {
        let events = vec![
            ev(Category::Allgather, "gg.allgather", 0, 10, 100, 0),
            ev(Category::ReduceScatter, "gg.reduce_scatter", 20, 10, 50, 0),
        ];
        let r = OverlapReport::from_events(&events);
        assert_eq!(r.totals[2].bytes, 150);
        assert_eq!(r.totals[2].busy_ns, 20);
        assert!(!r.is_empty());
        assert!(OverlapReport::from_events(&[]).is_empty());
    }

    #[test]
    fn render_produces_a_row_per_step_hop_and_totals() {
        let events = vec![
            ev(Category::Compute, STEP_SPAN, 0, 100, 0, 0),
            ev(Category::NcTransfer, "nc.read", 10, 20, 64, 0),
        ];
        let text = OverlapReport::from_events(&events).render();
        assert!(text.contains("total"));
        assert!(text.lines().count() >= 8, "header + step rows + totals:\n{text}");
    }
}
