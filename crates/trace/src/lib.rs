#![warn(missing_docs)]

//! `zi-trace`: lightweight, always-on structured tracing for the
//! three-hop offload pipeline.
//!
//! The paper's performance story is overlap-centric: the nc (NVMe→CPU),
//! cg (CPU→GPU), and gg (allgather) hops must hide behind compute
//! (Sec. 6). This crate is the measurement layer that makes overlap
//! *observable*: every concurrent subsystem records typed spans into a
//! lock-free per-thread ring buffer, a [`Tracer`] drains the rings into
//! a [`TraceSink`], and [`report::OverlapReport`] folds the spans into
//! per-step overlap efficiency (`io_hidden / io_busy` per hop) and
//! effective per-tier bandwidth. [`export::chrome_trace_json`] emits the
//! same spans as `chrome://tracing` JSON.
//!
//! Design constraints, in order:
//!
//! * **Cheap enough to leave on.** Recording a span is two atomic
//!   operations plus one slot write into a fixed-capacity ring owned by
//!   the recording thread — no locks, no allocation, no syscalls. A full
//!   ring drops (and counts) events rather than blocking the hot path.
//! * **Virtual-clock friendly.** Timestamps come from
//!   [`zi_sync::time::Instant`], so spans recorded inside a `zi-check`
//!   model run use the model's deterministic virtual clock.
//! * **Model-checkable.** The ring's single-producer/single-consumer
//!   hand-off is written against [`zi_sync::RaceCell`] slots and
//!   `zi_sync` atomics, so the `zi-check` race detector verifies the
//!   acquire/release protocol that makes draining safe (see the
//!   `trace_ring_drain` harness in `crates/check`).

use std::cell::RefCell;
use zi_sync::{Arc, Weak};

use zi_sync::atomic::{AtomicU64, Ordering};
use zi_sync::{Mutex, RaceCell};

pub mod export;
pub mod report;

/// Name of the per-step envelope span the trainer records around one
/// optimizer step (category [`Category::Compute`], `id` = step number).
///
/// Envelope spans delimit steps for [`report::OverlapReport`] and are
/// *excluded* from the compute union there — they contain the step's
/// I/O, so counting them as compute would make every hop look perfectly
/// hidden.
pub const STEP_SPAN: &str = "train_step";

/// Default per-thread ring capacity, in events.
pub const DEFAULT_RING_CAPACITY: usize = 4096;

/// Typed event categories, one per pipeline hop plus the phases that
/// hide them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum Category {
    /// NVMe↔CPU transfer (the nc hop); reads and writes.
    NcTransfer,
    /// CPU↔GPU transfer (the cg hop).
    CgTransfer,
    /// Allgather-family collective traffic (the gg hop).
    Allgather,
    /// Reduce-scatter-family collective traffic (gradient reduction).
    ReduceScatter,
    /// Forward/backward or optimizer arithmetic.
    #[default]
    Compute,
    /// Optimizer-step phase marker.
    OptimStep,
    /// Durable-checkpoint store traffic.
    Checkpoint,
    /// Fault handling: retried I/O, fault-gate hits, degradations.
    Retry,
    /// CPU-DRAM placement-path traffic (the cp hop): the DRAM-resident
    /// half of a split optimizer shard moving under a placement plan,
    /// concurrently with the nc hop.
    CpTransfer,
}

impl Category {
    /// Every category, in declaration order.
    pub const ALL: [Category; 9] = [
        Category::NcTransfer,
        Category::CgTransfer,
        Category::Allgather,
        Category::ReduceScatter,
        Category::Compute,
        Category::OptimStep,
        Category::Checkpoint,
        Category::Retry,
        Category::CpTransfer,
    ];

    /// Stable string label (used by the Chrome-trace exporter).
    pub fn label(self) -> &'static str {
        match self {
            Category::NcTransfer => "NcTransfer",
            Category::CgTransfer => "CgTransfer",
            Category::Allgather => "Allgather",
            Category::ReduceScatter => "ReduceScatter",
            Category::Compute => "Compute",
            Category::OptimStep => "OptimStep",
            Category::Checkpoint => "Checkpoint",
            Category::Retry => "Retry",
            Category::CpTransfer => "CpTransfer",
        }
    }

    /// Inverse of [`Category::label`].
    pub fn from_label(s: &str) -> Option<Category> {
        Category::ALL.iter().copied().find(|c| c.label() == s)
    }
}

/// One recorded span (or instantaneous event, when `dur_ns == 0` and it
/// was recorded via [`Tracer::instant`]).
///
/// Events are plain `Copy` data: a span is recorded *once*, complete, at
/// guard drop — there are no begin/end pairs to match up, and a span
/// never crosses threads (async I/O is spanned on the worker thread that
/// serves it).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Event {
    /// Event category.
    pub cat: Category,
    /// Static event name, e.g. `"nc.read"`.
    pub name: &'static str,
    /// Start, in nanoseconds since the tracer's epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds (0 for instantaneous events).
    pub dur_ns: u64,
    /// Payload size in bytes, when the event moves data.
    pub bytes: u64,
    /// Floating-point operations performed, when the event computes.
    pub flops: u64,
    /// Free-form correlation id (step number, ticket, param id, …).
    pub id: u64,
    /// Trace-local thread id of the recording thread.
    pub tid: u64,
}

/// Lock-free single-producer/single-consumer event ring.
///
/// The owning thread pushes; whoever holds the tracer's ring registry
/// (e.g. [`Tracer::flush`]) drains. The hand-off protocol is exactly:
/// producer publishes slots with a release store of `head`, consumer
/// acknowledges reads with a release store of `tail`, and each side
/// acquires the other's index before touching slots. Slots themselves
/// are [`RaceCell`]s — deliberately unordered — so a `zi-check` build
/// verifies the index protocol is what makes this race-free.
///
/// A full ring drops new events (counted in [`Ring::dropped`]) instead
/// of blocking or growing: tracing must never add back-pressure to the
/// I/O paths it measures.
pub struct Ring {
    tid: u64,
    slots: Vec<RaceCell<Event>>,
    /// Next slot to write; owned by the producer, published with Release.
    head: AtomicU64,
    /// Next slot to read; owned by the consumer, published with Release.
    tail: AtomicU64,
    dropped: AtomicU64,
}

impl Ring {
    /// New ring for trace-thread `tid` holding up to `capacity` events.
    pub fn new(tid: u64, capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Ring {
            tid,
            slots: (0..capacity).map(|_| RaceCell::new(Event::default())).collect(),
            head: AtomicU64::new(0),
            tail: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Trace-local id of the owning thread.
    pub fn tid(&self) -> u64 {
        self.tid
    }

    /// Append an event. Producer-side only (the owning thread). Returns
    /// `false` — and counts a drop — when the ring is full.
    pub fn push(&self, mut ev: Event) -> bool {
        // Acquire the consumer's progress so reuse of a drained slot
        // happens-after the consumer's read of it.
        let tail = self.tail.load(Ordering::Acquire);
        let head = self.head.load(Ordering::Relaxed); // producer-owned
        if head - tail >= self.slots.len() as u64 {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        ev.tid = self.tid;
        self.slots[(head % self.slots.len() as u64) as usize].set(ev);
        // Publish the slot write.
        self.head.store(head + 1, Ordering::Release);
        true
    }

    /// Drain every published event into `out`. Consumer-side only; the
    /// caller must serialize consumers (the tracer's ring registry lock
    /// does).
    pub fn drain_into(&self, out: &mut Vec<Event>) {
        // Acquire the producer's publications.
        let head = self.head.load(Ordering::Acquire);
        let mut tail = self.tail.load(Ordering::Relaxed); // consumer-owned
        while tail < head {
            out.push(self.slots[(tail % self.slots.len() as u64) as usize].get());
            tail += 1;
        }
        // Release the drained slots back to the producer.
        self.tail.store(tail, Ordering::Release);
    }

    /// Events discarded because the ring was full (cumulative).
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Events currently buffered.
    pub fn len(&self) -> usize {
        let head = self.head.load(Ordering::Acquire);
        let tail = self.tail.load(Ordering::Acquire);
        (head - tail) as usize
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Monotonic counter identifiers; see [`CounterSnapshot`] for meanings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // the snapshot fields below document each counter
pub enum Counter {
    NcReadBytes,
    NcWriteBytes,
    CpReadBytes,
    CpWriteBytes,
    CgBytes,
    GgBytes,
    RsBytes,
    CkptBytes,
    PrefetchIssued,
    PrefetchHits,
    PrefetchMisses,
    PrefetchLate,
    PrefetchCoalesced,
    Retries,
    DegradedTransitions,
    WbStalls,
    PinnedWaits,
    PinnedAcquires,
}

/// Monotonic counters and gauges shared by every subsystem a tracer is
/// wired through.
#[derive(Default)]
struct Counters {
    nc_read_bytes: AtomicU64,
    nc_write_bytes: AtomicU64,
    cp_read_bytes: AtomicU64,
    cp_write_bytes: AtomicU64,
    cg_bytes: AtomicU64,
    gg_bytes: AtomicU64,
    rs_bytes: AtomicU64,
    ckpt_bytes: AtomicU64,
    prefetch_issued: AtomicU64,
    prefetch_hits: AtomicU64,
    prefetch_misses: AtomicU64,
    prefetch_late: AtomicU64,
    prefetch_coalesced: AtomicU64,
    retries: AtomicU64,
    degraded_transitions: AtomicU64,
    wb_stalls: AtomicU64,
    pinned_waits: AtomicU64,
    pinned_acquires: AtomicU64,
    io_in_flight: AtomicU64,
    io_in_flight_peak: AtomicU64,
}

impl Counters {
    fn cell(&self, which: Counter) -> &AtomicU64 {
        match which {
            Counter::NcReadBytes => &self.nc_read_bytes,
            Counter::NcWriteBytes => &self.nc_write_bytes,
            Counter::CpReadBytes => &self.cp_read_bytes,
            Counter::CpWriteBytes => &self.cp_write_bytes,
            Counter::CgBytes => &self.cg_bytes,
            Counter::GgBytes => &self.gg_bytes,
            Counter::RsBytes => &self.rs_bytes,
            Counter::CkptBytes => &self.ckpt_bytes,
            Counter::PrefetchIssued => &self.prefetch_issued,
            Counter::PrefetchHits => &self.prefetch_hits,
            Counter::PrefetchMisses => &self.prefetch_misses,
            Counter::PrefetchLate => &self.prefetch_late,
            Counter::PrefetchCoalesced => &self.prefetch_coalesced,
            Counter::Retries => &self.retries,
            Counter::DegradedTransitions => &self.degraded_transitions,
            Counter::WbStalls => &self.wb_stalls,
            Counter::PinnedWaits => &self.pinned_waits,
            Counter::PinnedAcquires => &self.pinned_acquires,
        }
    }
}

/// Point-in-time copy of every counter and gauge a [`Tracer`] maintains.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Bytes read NVMe→CPU (nc hop).
    pub nc_read_bytes: u64,
    /// Bytes written CPU→NVMe (nc hop).
    pub nc_write_bytes: u64,
    /// Bytes read from the CPU-DRAM placement path (cp hop).
    pub cp_read_bytes: u64,
    /// Bytes written to the CPU-DRAM placement path (cp hop).
    pub cp_write_bytes: u64,
    /// Bytes uploaded CPU→GPU (cg hop).
    pub cg_bytes: u64,
    /// Allgather-family collective bytes received (gg hop).
    pub gg_bytes: u64,
    /// Reduce-scatter-family collective bytes processed.
    pub rs_bytes: u64,
    /// Durable-checkpoint payload bytes saved.
    pub ckpt_bytes: u64,
    /// Prefetch loads issued ahead of demand.
    pub prefetch_issued: u64,
    /// Demand fetches answered by a pending prefetch.
    pub prefetch_hits: u64,
    /// Demand fetches that found nothing pending.
    pub prefetch_misses: u64,
    /// Hits whose transfer was still in flight at demand time (the
    /// prefetch was issued but had not finished: late).
    pub prefetch_late: u64,
    /// Redundant prefetch hints coalesced onto an in-flight load.
    pub prefetch_coalesced: u64,
    /// I/O operations that needed at least one retry.
    pub retries: u64,
    /// NVMe→CPU degradations (device given up on).
    pub degraded_transitions: u64,
    /// Write-behind submissions that stalled on a full window.
    pub wb_stalls: u64,
    /// Pinned-buffer acquisitions that had to block (pool pressure).
    pub pinned_waits: u64,
    /// Total pinned-buffer acquisitions through traced pools.
    pub pinned_acquires: u64,
    /// Offload I/O requests in flight right now (gauge).
    pub io_in_flight: u64,
    /// High-water mark of `io_in_flight`.
    pub io_in_flight_peak: u64,
    /// Events discarded because a per-thread ring was full.
    pub events_dropped: u64,
}

/// The accumulator per-thread rings drain into; owned by a [`Tracer`].
#[derive(Default)]
struct TraceSink {
    events: Mutex<Vec<Event>>,
}

struct Inner {
    id: u64,
    enabled: bool,
    epoch: zi_sync::time::Instant,
    ring_capacity: usize,
    rings: Mutex<Vec<Arc<Ring>>>,
    sink: TraceSink,
    counters: Counters,
    next_tid: AtomicU64,
}

/// Distinguishes tracers in thread-local ring lookup. A plain `std`
/// atomic: id allocation is not part of any protocol under test.
static NEXT_TRACER_ID: zi_sync::atomic::AtomicU64 = zi_sync::atomic::AtomicU64::new(1);

thread_local! {
    static TLS_RINGS: RefCell<Vec<TlsEntry>> = const { RefCell::new(Vec::new()) };
}

struct TlsEntry {
    tracer_id: u64,
    tracer: Weak<Inner>,
    ring: Arc<Ring>,
}

/// Handle to one trace session; cheap to clone (an `Arc`).
///
/// A tracer is **on by default** — [`Tracer::new`], [`Default`], and
/// every subsystem constructor that makes its own all produce an active
/// tracer. Use [`Tracer::noop`] for a disabled one whose `span`/`count`
/// calls are branch-and-return.
#[derive(Clone)]
pub struct Tracer {
    inner: Arc<Inner>,
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new()
    }
}

impl Tracer {
    /// New active tracer with the default per-thread ring capacity.
    pub fn new() -> Self {
        Tracer::with_capacity(DEFAULT_RING_CAPACITY)
    }

    /// New active tracer with an explicit per-thread ring capacity.
    pub fn with_capacity(ring_capacity: usize) -> Self {
        Tracer::build(true, ring_capacity)
    }

    /// A disabled tracer: records nothing, counts nothing.
    pub fn noop() -> Self {
        Tracer::build(false, 1)
    }

    fn build(enabled: bool, ring_capacity: usize) -> Self {
        Tracer {
            inner: Arc::new(Inner {
                id: NEXT_TRACER_ID.fetch_add(1, zi_sync::atomic::Ordering::Relaxed),
                enabled,
                epoch: zi_sync::time::Instant::now(),
                ring_capacity: ring_capacity.max(1),
                rings: Mutex::new(Vec::new()),
                sink: TraceSink::default(),
                counters: Counters::default(),
                next_tid: AtomicU64::new(0),
            }),
        }
    }

    /// Whether this tracer records anything.
    pub fn enabled(&self) -> bool {
        self.inner.enabled
    }

    /// Nanoseconds elapsed since this tracer was created.
    pub fn now_ns(&self) -> u64 {
        self.inner.epoch.elapsed().as_nanos() as u64
    }

    /// Open a span; it records itself when the returned guard drops.
    pub fn span(&self, cat: Category, name: &'static str) -> Span<'_> {
        if !self.inner.enabled {
            return Span { tracer: None, cat, name, start_ns: 0, bytes: 0, flops: 0, id: 0 };
        }
        Span { tracer: Some(self), cat, name, start_ns: self.now_ns(), bytes: 0, flops: 0, id: 0 }
    }

    /// Record an instantaneous (zero-duration) event.
    pub fn instant(&self, cat: Category, name: &'static str, bytes: u64, id: u64) {
        if !self.inner.enabled {
            return;
        }
        let ev = Event { cat, name, start_ns: self.now_ns(), dur_ns: 0, bytes, flops: 0, id, tid: 0 };
        self.record(ev);
    }

    /// Bump monotonic counter `which` by `v`.
    pub fn count(&self, which: Counter, v: u64) {
        if self.inner.enabled && v > 0 {
            self.inner.counters.cell(which).fetch_add(v, Ordering::Relaxed);
        }
    }

    /// Raise the in-flight I/O gauge (and its high-water mark).
    pub fn io_inflight_inc(&self) {
        if !self.inner.enabled {
            return;
        }
        let c = &self.inner.counters;
        let now = c.io_in_flight.fetch_add(1, Ordering::Relaxed) + 1;
        c.io_in_flight_peak.fetch_max(now, Ordering::Relaxed);
    }

    /// Lower the in-flight I/O gauge.
    pub fn io_inflight_dec(&self) {
        if self.inner.enabled {
            self.inner.counters.io_in_flight.fetch_sub(1, Ordering::Relaxed);
        }
    }

    /// Copy every counter and gauge, including ring-drop totals.
    pub fn snapshot(&self) -> CounterSnapshot {
        let c = &self.inner.counters;
        let ld = |a: &AtomicU64| a.load(Ordering::Relaxed);
        let events_dropped = self.inner.rings.lock().iter().map(|r| r.dropped()).sum();
        CounterSnapshot {
            nc_read_bytes: ld(&c.nc_read_bytes),
            nc_write_bytes: ld(&c.nc_write_bytes),
            cp_read_bytes: ld(&c.cp_read_bytes),
            cp_write_bytes: ld(&c.cp_write_bytes),
            cg_bytes: ld(&c.cg_bytes),
            gg_bytes: ld(&c.gg_bytes),
            rs_bytes: ld(&c.rs_bytes),
            ckpt_bytes: ld(&c.ckpt_bytes),
            prefetch_issued: ld(&c.prefetch_issued),
            prefetch_hits: ld(&c.prefetch_hits),
            prefetch_misses: ld(&c.prefetch_misses),
            prefetch_late: ld(&c.prefetch_late),
            prefetch_coalesced: ld(&c.prefetch_coalesced),
            retries: ld(&c.retries),
            degraded_transitions: ld(&c.degraded_transitions),
            wb_stalls: ld(&c.wb_stalls),
            pinned_waits: ld(&c.pinned_waits),
            pinned_acquires: ld(&c.pinned_acquires),
            io_in_flight: ld(&c.io_in_flight),
            io_in_flight_peak: ld(&c.io_in_flight_peak),
            events_dropped,
        }
    }

    /// Drain every per-thread ring into the sink. Callable from any
    /// thread, any time; concurrent flushes serialize on the registry.
    pub fn flush(&self) {
        if !self.inner.enabled {
            return;
        }
        let rings = self.inner.rings.lock();
        let mut sink = self.inner.sink.events.lock();
        for ring in rings.iter() {
            ring.drain_into(&mut sink);
        }
    }

    /// Flush, then take every event recorded so far, sorted by start
    /// time. The sink is left empty (and any [`Tracer::events_from`]
    /// cursor is invalidated — clamped, not UB).
    pub fn take_events(&self) -> Vec<Event> {
        self.flush();
        let mut events = std::mem::take(&mut *self.inner.sink.events.lock());
        events.sort_by_key(|e| (e.start_ns, e.dur_ns, e.tid));
        events
    }

    /// Flush, then copy the events recorded since `cursor` (a value
    /// previously returned by this method; 0 for "everything") without
    /// disturbing the sink. Returns `(next_cursor, new_events)`.
    ///
    /// This is the cheap per-step extraction path for the adaptive
    /// controller: each call copies only the step's own events, and the
    /// full trace stays intact for end-of-run reports and Chrome-trace
    /// export. Events come back in ring-drain order, not time order —
    /// fine for [`report::OverlapReport::from_events`], which sorts
    /// internally. Pass `usize::MAX` to skip to the present (an empty
    /// slice positioned at "now"). Interleaving [`Tracer::take_events`]
    /// empties the sink and resets outstanding cursors to its start.
    pub fn events_from(&self, cursor: usize) -> (usize, Vec<Event>) {
        if !self.inner.enabled {
            return (0, Vec::new());
        }
        self.flush();
        let sink = self.inner.sink.events.lock();
        let cursor = cursor.min(sink.len());
        (sink.len(), sink[cursor..].to_vec())
    }

    fn record(&self, ev: Event) {
        let ring = self.thread_ring();
        let _ = ring.push(ev); // a full ring drops and counts
    }

    /// This thread's ring for this tracer, creating and registering it
    /// on first use.
    fn thread_ring(&self) -> Arc<Ring> {
        let inner = &self.inner;
        TLS_RINGS.with(|cell| {
            let mut entries = cell.borrow_mut();
            if let Some(e) = entries.iter().find(|e| e.tracer_id == inner.id) {
                return Arc::clone(&e.ring);
            }
            // Drop cached rings of tracers that no longer exist.
            entries.retain(|e| e.tracer.strong_count() > 0);
            let tid = inner.next_tid.fetch_add(1, Ordering::Relaxed);
            let ring = Arc::new(Ring::new(tid, inner.ring_capacity));
            inner.rings.lock().push(Arc::clone(&ring));
            entries.push(TlsEntry {
                tracer_id: inner.id,
                tracer: Arc::downgrade(inner),
                ring: Arc::clone(&ring),
            });
            ring
        })
    }
}

/// An open span; records one [`Event`] when dropped.
pub struct Span<'a> {
    tracer: Option<&'a Tracer>,
    cat: Category,
    name: &'static str,
    start_ns: u64,
    bytes: u64,
    flops: u64,
    id: u64,
}

impl Span<'_> {
    /// Attach a payload size to the span.
    pub fn set_bytes(&mut self, bytes: u64) {
        self.bytes = bytes;
    }

    /// Attach a floating-point operation count to the span, so reports
    /// can derive effective GFLOP/s for compute kernels.
    pub fn set_flops(&mut self, flops: u64) {
        self.flops = flops;
    }

    /// Attach a correlation id to the span.
    pub fn set_id(&mut self, id: u64) {
        self.id = id;
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some(tracer) = self.tracer {
            let end = tracer.now_ns();
            tracer.record(Event {
                cat: self.cat,
                name: self.name,
                start_ns: self.start_ns,
                dur_ns: end.saturating_sub(self.start_ns),
                bytes: self.bytes,
                flops: self.flops,
                id: self.id,
                tid: 0,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_on_drop_with_bytes_and_id() {
        let t = Tracer::new();
        {
            let mut s = t.span(Category::NcTransfer, "nc.read");
            s.set_bytes(4096);
            s.set_id(7);
        }
        t.instant(Category::Retry, "io.retry", 0, 3);
        let evs = t.take_events();
        assert_eq!(evs.len(), 2);
        let span = evs.iter().find(|e| e.name == "nc.read").unwrap();
        assert_eq!((span.cat, span.bytes, span.id), (Category::NcTransfer, 4096, 7));
        let inst = evs.iter().find(|e| e.name == "io.retry").unwrap();
        assert_eq!((inst.cat, inst.dur_ns, inst.id), (Category::Retry, 0, 3));
        // The sink was emptied.
        assert!(t.take_events().is_empty());
    }

    #[test]
    fn noop_tracer_records_and_counts_nothing() {
        let t = Tracer::noop();
        {
            let mut s = t.span(Category::Compute, "x");
            s.set_bytes(1);
        }
        t.instant(Category::Retry, "y", 1, 1);
        t.count(Counter::Retries, 5);
        t.io_inflight_inc();
        assert!(t.take_events().is_empty());
        assert_eq!(t.snapshot(), CounterSnapshot::default());
    }

    #[test]
    fn full_ring_drops_and_counts_instead_of_blocking() {
        let t = Tracer::with_capacity(4);
        for i in 0..10 {
            t.instant(Category::Compute, "e", 0, i);
        }
        assert_eq!(t.snapshot().events_dropped, 6);
        let evs = t.take_events();
        assert_eq!(evs.len(), 4);
        // The oldest events won the slots.
        assert_eq!(evs.iter().map(|e| e.id).collect::<Vec<_>>(), vec![0, 1, 2, 3]);
        // Drained capacity is reusable.
        t.instant(Category::Compute, "e", 0, 99);
        assert_eq!(t.take_events().len(), 1);
    }

    #[test]
    fn events_from_many_threads_carry_distinct_tids() {
        let t = Tracer::new();
        let mut handles = Vec::new();
        for i in 0..4u64 {
            let t = t.clone();
            handles.push(zi_sync::thread::spawn(move || {
                t.instant(Category::Compute, "worker", 0, i);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        t.instant(Category::Compute, "main", 0, 100);
        let evs = t.take_events();
        assert_eq!(evs.len(), 5);
        let mut tids: Vec<u64> = evs.iter().map(|e| e.tid).collect();
        tids.sort_unstable();
        tids.dedup();
        assert_eq!(tids.len(), 5, "each thread gets its own ring/tid");
    }

    #[test]
    fn counters_accumulate_and_gauge_tracks_peak() {
        let t = Tracer::new();
        t.count(Counter::NcReadBytes, 100);
        t.count(Counter::NcReadBytes, 28);
        t.io_inflight_inc();
        t.io_inflight_inc();
        t.io_inflight_dec();
        let s = t.snapshot();
        assert_eq!(s.nc_read_bytes, 128);
        assert_eq!(s.io_in_flight, 1);
        assert_eq!(s.io_in_flight_peak, 2);
    }

    #[test]
    fn events_from_cursor_is_incremental_and_non_destructive() {
        let t = Tracer::new();
        t.instant(Category::Compute, "a", 0, 1);
        let (c1, batch1) = t.events_from(0);
        assert_eq!(batch1.len(), 1);
        // Nothing new: empty slice, cursor unchanged.
        let (c2, batch2) = t.events_from(c1);
        assert_eq!((c2, batch2.len()), (c1, 0));
        t.instant(Category::Compute, "b", 0, 2);
        let (c3, batch3) = t.events_from(c2);
        assert_eq!(batch3.len(), 1);
        assert_eq!(batch3[0].id, 2, "only the new event is returned");
        // The sink was never drained: a full take still sees both.
        assert_eq!(t.take_events().len(), 2);
        // Cursors from before the take clamp instead of panicking, and
        // usize::MAX skips to the present.
        let (c4, batch4) = t.events_from(c3);
        assert_eq!((c4, batch4.len()), (0, 0));
        t.instant(Category::Compute, "c", 0, 3);
        let (c5, skipped) = t.events_from(usize::MAX);
        assert_eq!((c5, skipped.len()), (1, 0));
    }

    #[test]
    fn same_thread_two_tracers_do_not_cross_streams() {
        let a = Tracer::new();
        let b = Tracer::new();
        a.instant(Category::Compute, "a", 0, 1);
        b.instant(Category::Compute, "b", 0, 2);
        assert_eq!(a.take_events().len(), 1);
        assert_eq!(b.take_events().len(), 1);
    }
}
