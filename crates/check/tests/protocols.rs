//! Model-check harnesses for the workspace's real concurrency
//! protocols: the generation barrier under scripted rank death and the
//! membership join handshake racing that death
//! (`zi-comm`), the write-behind engine's `flush` durability barrier and
//! the checkpoint store's `save_async`/crash/`open` recovery
//! (`zi-nvme`), and the buffer pools (`zi-memory`).
//!
//! Under `RUSTFLAGS="--cfg zi_check"` each body is explored across
//! thousands of distinct interleavings with deadlock, lost-wakeup, and
//! data-race detection; failures print a replayable seed/trace. In a
//! passthrough build the same bodies run once on real primitives, so
//! this file doubles as a plain concurrency smoke test.

use zi_sync::Arc;
use std::time::Duration;

use zi_adapt::{KnobCell, Knobs};
use zi_check::{Checker, Report};
use zi_comm::{CommConfig, CommFaultPlan, CommGroup, Membership};
use zi_memory::{PinnedBufferPool, PlacementPolicy, PlanCell, ScratchPool};
use zi_nvme::{CheckpointStore, FaultPlan, FaultyBackend, MemBackend, NvmeEngine, StorageBackend};
use zi_sync::thread;
use zi_trace::{Category, Event, Ring};
use zi_types::Error;

/// Distinct-schedule floor each harness must reach (or exhaust the
/// bounded space) in model-checking builds.
const DISTINCT_TARGET: usize = 1000;

fn drive(name: &str, checker: Checker, body: impl Fn() + Send + Sync + 'static) -> Report {
    let report = checker.check(name, body);
    eprintln!(
        "harness `{name}`: {} distinct / {} schedules, {} steps, exhausted={}",
        report.distinct, report.schedules, report.steps, report.exhausted
    );
    if let Some(f) = &report.failure {
        panic!("harness `{name}` failed after {} schedules\n{f}", report.schedules);
    }
    if zi_check::enabled() {
        assert!(
            report.covered(DISTINCT_TARGET),
            "harness `{name}` explored only {} distinct schedules \
             (target {DISTINCT_TARGET}, exhausted={})",
            report.distinct,
            report.exhausted,
        );
    }
    report
}

/// Random sampling for protocols whose interleaving space dwarfs the
/// distinct-schedule target.
fn run(name: &str, body: impl Fn() + Send + Sync + 'static) -> Report {
    drive(name, Checker { schedules: 2500, ..Checker::default() }, body)
}

/// Exhaustive (unbounded-preemption) DFS for protocols whose full space
/// is smaller than the sampling target — complete enumeration is the
/// stronger guarantee there.
fn run_exhaustive(name: &str, body: impl Fn() + Send + Sync + 'static) -> Report {
    let checker = Checker {
        mode: zi_check::Mode::Dfs,
        schedules: 200_000,
        preemptions: usize::MAX,
        ..Checker::default()
    };
    drive(name, checker, body)
}

// ---------------------------------------------------------------------------
// Protocol 1: generation barrier under scripted rank death.
//
// Invariant: a rank dying mid-sequence never hangs the group — every
// rank (victim and survivor) gets a typed `RankFailed{victim}` promptly,
// and the group latches exactly one failed rank, forever.

fn barrier_rank_death_body() {
    let plan = CommFaultPlan::new();
    plan.kill_rank_after_ops(1, 1); // dies entering its 2nd collective
    let group = CommGroup::with_config(
        2,
        CommConfig { deadline: Duration::from_secs(30), faults: plan },
    );
    let handles: Vec<_> = group
        .communicators()
        .into_iter()
        .map(|comm| {
            thread::spawn(move || {
                for i in 0..4u32 {
                    if let Err(e) = comm.barrier() {
                        return (i, e);
                    }
                }
                panic!("rank {} survived a broken group", comm.rank());
            })
        })
        .collect();
    let results: Vec<(u32, Error)> =
        handles.into_iter().map(|h| h.join().expect("rank thread")).collect();
    for (rank, (i, e)) in results.iter().enumerate() {
        assert!(
            matches!(e, Error::RankFailed { rank: 1, .. }),
            "rank {rank} got {e} instead of RankFailed{{1}}"
        );
        assert!(*i >= 1, "the first barrier precedes the kill, so it must succeed");
    }
    assert_eq!(results[1].0, 1, "victim dies entering its 2nd collective");
    assert_eq!(group.failed_rank(), Some(1), "exactly one failure generation latched");
}

#[test]
fn barrier_survives_scripted_rank_death() {
    run("barrier-rank-death", barrier_rank_death_body);
}

// ---------------------------------------------------------------------------
// Protocol 2: write-behind engine — `flush` is a true durability
// barrier.
//
// Invariant: after `flush` returns, every previously submitted write
// (ticketed and detached) has reached the backend and nothing is in
// flight — in every interleaving of submitter, worker, and flusher.

fn engine_flush_body() {
    let backend = Arc::new(MemBackend::new());
    let eng = NvmeEngine::new(Arc::clone(&backend) as Arc<dyn StorageBackend>, 1);
    eng.submit_write_detached(0, vec![1u8; 8]);
    let ticket = eng.submit_write(64, vec![2u8; 8]);
    eng.flush().expect("flush cannot fail on a healthy backend");
    assert_eq!(eng.in_flight(), 0, "flush left requests in flight");
    assert_eq!(backend.bytes_written(), 16, "flush returned before writes were durable");
    assert!(eng.wait(ticket).expect("ticketed write").is_none());
    drop(eng); // must join the worker without hanging in any schedule
}

#[test]
fn engine_flush_is_a_durability_barrier() {
    run("engine-flush-drain", engine_flush_body);
}

// ---------------------------------------------------------------------------
// Protocol 3: checkpoint store — concurrent `save_async` + torn-write
// crash + reopen recovery.
//
// Invariant: whatever interleaving of the queuing thread, the
// background writer, and the draining thread plays out, reopening the
// device never offers the torn version: recovery always lands on the
// last durable checkpoint with an intact payload.

fn store_crash_recovery_body() {
    let plan = FaultPlan::new();
    let backend: Arc<dyn StorageBackend> =
        Arc::new(FaultyBackend::new(MemBackend::new(), plan.clone()));
    {
        let store =
            CheckpointStore::new(Arc::clone(&backend), 1, 2).expect("create store");
        store.save(0, 1, b"version-one").expect("sync save v1");
        // The very next write — v2's slot invalidation — tears partway
        // through, so v2 can never be published.
        plan.torn_next_writes(1);
        let queued = store.clone();
        let t = thread::spawn(move || {
            let _ = queued.save_async(0, 2, b"version-two".to_vec());
        });
        // Race the durability barrier against the queue and the writer:
        // depending on the schedule it observes the failure or returns
        // before the save is even queued. Either is legal; recovery
        // below must not depend on it.
        let _ = store.drain();
        t.join().expect("queuing thread");
        let _ = store.drain();
    } // drop joins the background writer
    let store = CheckpointStore::open(Arc::clone(&backend)).expect("reopen device");
    assert_eq!(
        store.latest_complete(1).expect("scan"),
        Some(1),
        "torn v2 must never be offered for recovery"
    );
    assert_eq!(store.load(0, 1).expect("latest durable payload"), b"version-one".to_vec());
}

#[test]
fn store_recovery_never_sees_torn_manifests() {
    run("store-crash-recovery", store_crash_recovery_body);
}

// ---------------------------------------------------------------------------
// Protocol 4: buffer pools — checkout/return under contention.
//
// Invariant: a single-buffer pinned pool hands its buffer to both
// threads (one blocks on the condvar until the other returns it),
// bookkeeping balances, and the scratch pool recycles without losing
// vectors — no deadlock, no lost wakeup, no race on the counters.

fn pool_checkout_body() {
    let pool = PinnedBufferPool::new(1, 4);
    let scratch = ScratchPool::new();
    let (p2, s2) = (pool.clone(), scratch.clone());
    let t = thread::spawn(move || {
        let mut b = p2.acquire();
        b.as_mut_slice()[0] ^= 0xff;
        let mut v = s2.acquire(4);
        v.push(1.0);
    });
    {
        let mut b = pool.acquire();
        b.as_mut_slice()[0] ^= 0xff;
        let mut v = scratch.acquire(4);
        v.push(2.0);
    }
    t.join().expect("contending thread");
    assert_eq!(pool.outstanding(), 0, "a checkout was never returned");
    assert_eq!(pool.total_acquires(), 2);
    assert_eq!(pool.acquire().as_slice()[0], 0, "both threads saw the same buffer");
    let st = scratch.stats();
    assert_eq!(st.allocated + st.reused, 2);
    assert_eq!(scratch.idle(), st.allocated as usize, "every scratch vector came home");
}

#[test]
fn pools_checkout_return_race_free() {
    run_exhaustive("pool-checkout-return", pool_checkout_body);
}

// ---------------------------------------------------------------------------
// Protocol 5: tracer event ring — the SPSC push/drain hand-off.
//
// The ring's slots are deliberately unordered `RaceCell`s; only the
// release-store of `head` (producer) and `tail` (consumer) make slot
// access safe, so the race detector verifies exactly that protocol.
//
// Invariant: with a consumer draining *while* the producer pushes into a
// deliberately tiny ring, every event is either drained intact or
// counted as dropped — accepted + dropped == produced, nothing is lost,
// and no drained slot is torn (every field still matches what the
// producer derived from the event id).

fn trace_ring_drain_body() {
    const EVENTS: u64 = 4;
    const TID: u64 = 7;
    let ring = Arc::new(Ring::new(TID, 2)); // capacity 2 forces the full-ring drop path
    let producer_ring = Arc::clone(&ring);
    let producer = thread::spawn(move || {
        let mut accepted = 0u64;
        for i in 0..EVENTS {
            let ev = Event {
                cat: Category::NcTransfer,
                name: "nc.read",
                start_ns: i,
                dur_ns: i * 3,
                bytes: i * 5 + 1,
                flops: 0,
                id: i,
                tid: 0, // push stamps the ring's tid
            };
            if producer_ring.push(ev) {
                accepted += 1;
            }
        }
        accepted
    });
    let mut drained = Vec::new();
    ring.drain_into(&mut drained); // races the producer
    let accepted = producer.join().expect("producer thread");
    ring.drain_into(&mut drained); // post-join: collect whatever is left
    assert!(ring.is_empty(), "a final drain must empty the ring");
    assert_eq!(drained.len() as u64, accepted, "an accepted event was lost");
    assert_eq!(accepted + ring.dropped(), EVENTS, "accept/drop bookkeeping leaks events");
    assert!(accepted >= 2, "a capacity-2 ring accepts at least the first two events");
    let mut last_id = None;
    for ev in &drained {
        let i = ev.id;
        assert!(last_id.is_none_or(|l| l < i), "events must drain in push order");
        last_id = Some(i);
        assert_eq!(
            (ev.start_ns, ev.dur_ns, ev.bytes, ev.tid),
            (i, i * 3, i * 5 + 1, TID),
            "drained slot torn: fields disagree with event id {i}"
        );
    }
}

#[test]
fn trace_ring_drain_race_free() {
    run_exhaustive("trace-ring-drain", trace_ring_drain_body);
}

// ---------------------------------------------------------------------------
// Protocol 6: adaptive knob hand-off — controller publish vs. engine
// poll/wait on the versioned knob cell.
//
// Invariant: a reader never observes a torn knob set (all three fields
// of a publish become visible together), versions are strictly monotone
// per reader even when intermediate publishes are skipped, and a
// blocked `wait_past` never misses the wakeup for a publish that races
// it — the exact hand-off `run_rank` performs between optimizer steps.

fn knob_cell_handoff_body() {
    // Fields derived from one generator so a torn read (fields from two
    // different publishes) is detectable by arithmetic alone.
    fn knobs(v: usize) -> Knobs {
        Knobs {
            step_pipeline_depth: v,
            prefetch_window: 2 * v,
            write_behind: 3 * v,
            optimizer_cpu_permille: 125 * v,
        }
    }
    fn check(version: u64, k: Knobs) {
        let v = k.step_pipeline_depth;
        assert!((1..=3).contains(&v), "version {version}: impossible depth {v}");
        assert_eq!(
            (k.prefetch_window, k.write_behind, k.optimizer_cpu_permille),
            (2 * v, 3 * v, 125 * v),
            "torn read at version {version}: {k}"
        );
    }
    let cell = Arc::new(KnobCell::new(knobs(1))); // version 1

    // The controller: two back-to-back retunes.
    let publisher = {
        let cell = Arc::clone(&cell);
        thread::spawn(move || {
            assert_eq!(cell.publish(knobs(2)), 2, "versions count publishes");
            assert_eq!(cell.publish(knobs(3)), 3);
        })
    };
    // A polling rank: the non-blocking per-step `read_if_newer` loop,
    // then a blocking tail so the schedule always ends having seen the
    // final publish (progress guarantee).
    let poller = {
        let cell = Arc::clone(&cell);
        thread::spawn(move || {
            let (mut seen, first) = cell.read();
            check(seen, first);
            for _ in 0..3 {
                if let Some((v, k)) = cell.read_if_newer(seen) {
                    assert!(v > seen, "read_if_newer returned a stale version");
                    check(v, k);
                    seen = v;
                }
            }
            while seen < 3 {
                let (v, k) = cell.wait_past(seen);
                assert!(v > seen, "wait_past returned a stale version");
                check(v, k);
                seen = v;
            }
        })
    };
    // A purely blocking rank: `wait_past` chained to the end — the
    // deadlock detector turns any lost wakeup into a failure.
    let waiter = {
        let cell = Arc::clone(&cell);
        thread::spawn(move || {
            let mut seen = 1u64;
            while seen < 3 {
                let (v, k) = cell.wait_past(seen);
                assert!(v > seen);
                check(v, k);
                seen = v;
            }
        })
    };
    publisher.join().expect("publisher");
    poller.join().expect("poller");
    waiter.join().expect("waiter");
    let (v, k) = cell.read();
    assert_eq!((v, k), (3, knobs(3)), "the last publish must win");
}

#[test]
fn knob_cell_handoff_is_race_free() {
    run("knob-cell-handoff", knob_cell_handoff_body);
}

// ---------------------------------------------------------------------------
// Protocol 6b: placement-plan hand-off — re-tier publish vs. engine
// poll/wait on the versioned plan cell.
//
// The placement twin of the knob-cell protocol: the adaptive
// controller's placement knob (or degraded-mode collapse) publishes a
// whole [`PlacementPolicy`] while every rank's engine polls it between
// optimizer steps and rebuilds shard plans from what it reads.
//
// Invariant: a reader never observes a torn policy (both fields of a
// publish become visible together — a torn read would make two ranks
// disagree about a shard's layout), versions are strictly monotone per
// reader even when intermediate publishes are skipped, and a blocked
// `wait_past` never misses the wakeup for a publish that races it.

fn plan_cell_handoff_body() {
    // Both fields derived from one generator so a torn read (fields
    // from two different publishes) is detectable by arithmetic alone.
    fn policy(v: u32) -> PlacementPolicy {
        PlacementPolicy::split(125 * v, 2 * v as usize)
    }
    fn check(version: u64, p: PlacementPolicy) {
        let v = p.cpu_permille / 125;
        assert!((1..=3).contains(&v), "version {version}: impossible permille {}", p.cpu_permille);
        assert_eq!(
            (p.cpu_permille, p.stripe),
            (125 * v, 2 * v as usize),
            "torn read at version {version}: cpu={}‰ stripe={}",
            p.cpu_permille,
            p.stripe
        );
    }
    let cell = Arc::new(PlanCell::new(policy(1))); // version 1

    // The re-tierer: two back-to-back placement changes.
    let publisher = {
        let cell = Arc::clone(&cell);
        thread::spawn(move || {
            assert_eq!(cell.publish(policy(2)), 2, "versions count publishes");
            assert_eq!(cell.publish(policy(3)), 3);
        })
    };
    // A polling rank: the non-blocking per-step `read_if_newer` loop the
    // engine runs, then a blocking tail so the schedule always ends
    // having seen the final publish (progress guarantee).
    let poller = {
        let cell = Arc::clone(&cell);
        thread::spawn(move || {
            let (mut seen, first) = cell.read();
            check(seen, first);
            for _ in 0..3 {
                if let Some((v, p)) = cell.read_if_newer(seen) {
                    assert!(v > seen, "read_if_newer returned a stale version");
                    check(v, p);
                    seen = v;
                }
            }
            while seen < 3 {
                let (v, p) = cell.wait_past(seen);
                assert!(v > seen, "wait_past returned a stale version");
                check(v, p);
                seen = v;
            }
        })
    };
    // A purely blocking rank: `wait_past` chained to the end — the
    // deadlock detector turns any lost wakeup into a failure.
    let waiter = {
        let cell = Arc::clone(&cell);
        thread::spawn(move || {
            let mut seen = 1u64;
            while seen < 3 {
                let (v, p) = cell.wait_past(seen);
                assert!(v > seen);
                check(v, p);
                seen = v;
            }
        })
    };
    publisher.join().expect("publisher");
    poller.join().expect("poller");
    waiter.join().expect("waiter");
    let (v, p) = cell.read();
    assert_eq!((v, p), (3, policy(3)), "the last publish must win");
}

#[test]
fn plan_cell_handoff_is_race_free() {
    run("plan-cell-handoff", plan_cell_handoff_body);
}

// ---------------------------------------------------------------------------
// Protocol 7: kernel worker pool — job submission, index claiming and
// the per-job completion barrier.
//
// Invariants: every index of every job runs exactly once (no lost or
// double-claimed tiles); `run` does not return before all of its
// indices completed (the completion mutex provides the happens-before
// edge, so the submitter's reads of task output are race-free); a
// panicking task still releases the submitter; and pool shutdown never
// deadlocks against in-flight jobs.

fn kernel_pool_tiling_body() {
    use zi_tensor::pool::KernelPool;

    let pool = KernelPool::new(2);
    // Two jobs back-to-back from the same submitter, writing disjoint
    // slots. Plain (non-atomic) writes: if two tasks ever claimed the
    // same index, or `run` returned early, the race detector and the
    // assertions below would fire.
    let mut out = vec![0u32; 5];
    {
        let base = zi_tensor::pool::SendPtr::new(out.as_mut_ptr());
        pool.run(5, &move |i| {
            // SAFETY: each index is claimed exactly once, so writes are
            // disjoint; `run` returns only after all of them finish.
            unsafe { *base.get().add(i) = i as u32 + 1 };
        });
    }
    assert_eq!(out, vec![1, 2, 3, 4, 5], "job 1: every tile exactly once");
    {
        let base = zi_tensor::pool::SendPtr::new(out.as_mut_ptr());
        pool.run(3, &move |i| {
            // SAFETY: same disjoint-index argument as job 1.
            unsafe { *base.get().add(i) += 10 };
        });
    }
    assert_eq!(out, vec![11, 12, 13, 4, 5], "job 2: reuses the same pool");
    drop(pool); // shutdown must join both workers without deadlock
}

#[test]
fn kernel_pool_tiling_is_race_free() {
    run("kernel-pool-tiling", kernel_pool_tiling_body);
}

// ---------------------------------------------------------------------------
// Protocol 8: membership join handshake racing a scripted rank death.
//
// A joiner requests admission while a 2-rank group runs collectives and
// a comm fault plan scripts rank 1's death entering its 3rd barrier.
// Whichever latches first wins, and the precedence rule keeps the
// outcome coherent:
//
//   * resize first — rank 1's fatal admit is preempted by the retirement
//     check, the kill never fires, and every rank gets a voluntary
//     `MembershipChange`; the group latches no failure.
//   * failure first — `mark_resize` is a no-op on a failed group, so
//     the resize never latches and the victim gets `RankFailed{1}`; the
//     join request itself survives in the ledger for the next
//     generation.
//
// The two planes are *not* one atomic step: a survivor can be retired
// by the resize in the same instant the victim's scripted kill fires,
// so a survivor's classification may race (`MembershipChange` vs
// `RankFailed`). What must hold in every interleaving: no rank ever
// hangs; every halt is one of the two typed errors; the victim of a
// fired kill always reports its own death; the latched group state
// agrees with the strongest class any rank observed (failure outranks
// resize); and folding the next generation accounts for the join
// exactly once (`pending_joins` drains to zero, world = base + 1).

fn join_handshake_vs_rank_death_body() {
    let plan = CommFaultPlan::new();
    plan.kill_rank_after_ops(1, 2); // dies entering its 3rd collective
    let membership = Membership::new(2);
    let group = CommGroup::with_membership(
        2,
        CommConfig { deadline: Duration::from_secs(30), faults: plan },
        &membership,
    );
    let joiner = {
        let membership = membership.clone();
        thread::spawn(move || membership.request_join())
    };
    let handles: Vec<_> = group
        .communicators()
        .into_iter()
        .map(|comm| {
            thread::spawn(move || {
                for i in 0..6u32 {
                    if let Err(e) = comm.barrier() {
                        return (i, e);
                    }
                }
                panic!("rank {} outlived both the kill and the retirement", comm.rank());
            })
        })
        .collect();
    let results: Vec<(u32, Error)> =
        handles.into_iter().map(|h| h.join().expect("rank thread")).collect();
    joiner.join().expect("joiner thread");

    let mut saw_failure = false;
    for (rank, (i, e)) in results.iter().enumerate() {
        match e {
            Error::MembershipChange { joining: 1, .. } => {}
            Error::RankFailed { rank: 1, .. } => saw_failure = true,
            other => panic!("rank {rank} got untyped halt {other}"),
        }
        assert!(*i <= 2, "rank {rank} survived past the kill threshold ({i})");
    }
    if saw_failure {
        // Only the victim's scripted admit can latch the failure, so it
        // must have reported its own death even when the survivor's
        // classification raced the resize.
        assert!(
            matches!(results[1].1, Error::RankFailed { rank: 1, .. }),
            "failure latched but the victim reported {:?}",
            results[1].1
        );
        assert_eq!(group.failed_rank(), Some(1), "observed failure never latched");
        assert_eq!(group.pending_resize(), None, "failure must outrank the resize latch");
    } else {
        assert_eq!(group.failed_rank(), None, "voluntary retirement latched a failure");
        assert_eq!(group.pending_resize(), Some(1), "retirement without a latched resize");
    }
    // The generation fold: survivors (1 after a death, both otherwise)
    // plus the one join, with the ledger drained.
    assert_eq!(membership.pending_joins(), 1, "join request lost before the fold");
    let base = if saw_failure { 1 } else { 2 };
    assert_eq!(membership.next_generation(base), (1, base + 1));
    assert_eq!(membership.pending_joins(), 0, "fold must drain the join ledger");
}

#[test]
fn join_handshake_survives_racing_rank_death() {
    run("join-handshake-vs-rank-death", join_handshake_vs_rank_death_body);
}

fn kernel_pool_panic_release_body() {
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use zi_tensor::pool::KernelPool;

    let pool = KernelPool::new(1);
    let result = catch_unwind(AssertUnwindSafe(|| {
        pool.run(2, &|i| {
            if i == 1 {
                panic!("tile panic");
            }
        });
    }));
    assert!(result.is_err(), "task panic must propagate to the submitter");
    // The pool must remain serviceable after a panicked job.
    let counter = zi_sync::atomic::AtomicU32::new(0);
    pool.run(3, &|_| {
        counter.fetch_add(1, zi_sync::atomic::Ordering::SeqCst);
    });
    assert_eq!(counter.load(zi_sync::atomic::Ordering::SeqCst), 3, "pool usable after panic");
}

#[test]
fn kernel_pool_panic_releases_submitter() {
    run("kernel-pool-panic-release", kernel_pool_panic_release_body);
}
