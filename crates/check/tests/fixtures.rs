//! Self-tests for the detector itself: seeded-bug fixtures `zi-check`
//! MUST flag (guarding against false-negative regressions in the
//! checker) and known-clean protocols it must pass. Only meaningful
//! under `RUSTFLAGS="--cfg zi_check"`; in passthrough builds the buggy
//! fixtures would really deadlock, so the whole file is gated.
#![cfg(zi_check)]

use zi_sync::Arc;

use zi_check::{Checker, FailureKind};
use zi_sync::atomic::{AtomicBool, AtomicU64, Ordering};
use zi_sync::{thread, Condvar, Mutex, RaceCell};

fn checker(schedules: usize) -> Checker {
    Checker { schedules, ..Checker::default() }
}

// ---------------------------------------------------------------------------
// Seeded bug 1: data race via relaxed-ordering publish

fn relaxed_publish_body() {
    let cell = Arc::new(RaceCell::new(0u64));
    let flag = Arc::new(AtomicBool::new(false));
    let (c2, f2) = (Arc::clone(&cell), Arc::clone(&flag));
    let t = thread::spawn(move || {
        c2.set(42);
        // BUG: Relaxed store publishes no happens-before edge, so the
        // reader below may touch the cell unordered with the write.
        f2.store(true, Ordering::Relaxed);
    });
    if flag.load(Ordering::Relaxed) {
        let _ = cell.get();
    }
    t.join().unwrap();
}

#[test]
fn flags_relaxed_publish_data_race() {
    let report = checker(1000).check("fixture-relaxed-publish", relaxed_publish_body);
    let f = report.failure.expect("detector must flag the relaxed-publish race");
    assert_eq!(f.kind, FailureKind::DataRace, "unexpected failure: {f}");
}

// Clean twin: the identical shape with release/acquire ordering carries
// the happens-before edge and must pass.
#[test]
fn passes_release_acquire_publish() {
    let report = checker(1000).check("fixture-clean-publish", || {
        let cell = Arc::new(RaceCell::new(0u64));
        let flag = Arc::new(AtomicBool::new(false));
        let (c2, f2) = (Arc::clone(&cell), Arc::clone(&flag));
        let t = thread::spawn(move || {
            c2.set(42);
            f2.store(true, Ordering::Release);
        });
        if flag.load(Ordering::Acquire) {
            assert_eq!(cell.get(), 42);
        }
        t.join().unwrap();
        assert_eq!(cell.get(), 42); // ordered by join
    });
    assert!(report.passed(), "clean publish wrongly flagged: {}", report.failure.unwrap());
}

// ---------------------------------------------------------------------------
// Seeded bug 2: ABBA deadlock

fn abba_body() {
    let a = Arc::new(Mutex::new(0u32));
    let b = Arc::new(Mutex::new(0u32));
    let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
    let t = thread::spawn(move || {
        let _ga = a2.lock();
        let _gb = b2.lock();
    });
    // BUG: opposite acquisition order from the spawned thread.
    let _gb = b.lock();
    let _ga = a.lock();
    drop(_ga);
    drop(_gb);
    t.join().unwrap();
}

#[test]
fn flags_abba_deadlock_with_cycle() {
    let report = checker(1000).check("fixture-abba", abba_body);
    let f = report.failure.expect("detector must flag the ABBA deadlock");
    assert_eq!(f.kind, FailureKind::Deadlock, "unexpected failure: {f}");
    assert!(f.message.contains("wait-for cycle"), "no cycle in report:\n{}", f.message);
}

// ---------------------------------------------------------------------------
// Seeded bug 3: lost wakeup — the exact pre-fix NvmeEngine::flush shape
// (completion counter decremented and notified outside the lock the
// waiter's predicate check holds).

fn lost_wakeup_body() {
    let shared = Arc::new((Mutex::new(()), Condvar::new(), AtomicU64::new(1)));
    let s2 = Arc::clone(&shared);
    let t = thread::spawn(move || {
        let (_m, cv, in_flight) = &*s2;
        // BUG: decrement + notify without holding the mutex; the waiter
        // can check the counter, see 1, and park after this notify.
        in_flight.fetch_sub(1, Ordering::AcqRel);
        cv.notify_all();
    });
    let (m, cv, in_flight) = &*shared;
    let mut g = m.lock();
    while in_flight.load(Ordering::Acquire) > 0 {
        cv.wait(&mut g);
    }
    drop(g);
    t.join().unwrap();
}

#[test]
fn flags_lost_wakeup() {
    let report = checker(1000).check("fixture-lost-wakeup", lost_wakeup_body);
    let f = report.failure.expect("detector must flag the lost wakeup");
    assert_eq!(f.kind, FailureKind::Deadlock, "unexpected failure: {f}");
    assert!(f.message.contains("lost wakeup"), "no lost-wakeup note:\n{}", f.message);
}

// ---------------------------------------------------------------------------
// Known-clean protocol: predicate mutated under the condvar's mutex.

#[test]
fn passes_guarded_condvar_handoff() {
    let report = checker(1000).check("fixture-clean-handoff", || {
        let shared = Arc::new((Mutex::new(0u32), Condvar::new()));
        let s2 = Arc::clone(&shared);
        let t = thread::spawn(move || {
            let (m, cv) = &*s2;
            let mut g = m.lock();
            *g += 1;
            cv.notify_one();
        });
        let (m, cv) = &*shared;
        let mut g = m.lock();
        while *g == 0 {
            cv.wait(&mut g);
        }
        drop(g);
        t.join().unwrap();
    });
    assert!(report.passed(), "clean handoff wrongly flagged: {}", report.failure.unwrap());
}

// ---------------------------------------------------------------------------
// Replay: a failing schedule reproduces deterministically from its
// recorded trace and from its printed seed.

#[test]
fn replays_failing_schedule_deterministically() {
    let c = checker(1000);
    let report = c.check("fixture-abba-replay", abba_body);
    let f = report.failure.expect("ABBA must fail");

    let from_trace = c.replay_trace("fixture-abba-replay", &f.trace, abba_body);
    let f2 = from_trace.failure.expect("trace replay must reproduce the failure");
    assert_eq!(f2.kind, f.kind);
    assert_eq!(f2.trace, f.trace, "trace replay diverged");

    let seed = f.seed.expect("random-mode failures carry a seed");
    let from_seed = c.replay_seed("fixture-abba-replay", seed, abba_body);
    let f3 = from_seed.failure.expect("seed replay must reproduce the failure");
    assert_eq!(f3.kind, f.kind);
    assert_eq!(f3.trace, f.trace, "seed replay diverged");
}

// DFS with a preemption bound systematically enumerates the bounded
// space and still catches the ABBA bug.
#[test]
fn dfs_mode_finds_abba() {
    let c = Checker { mode: zi_check::Mode::Dfs, schedules: 5000, ..Checker::default() };
    let report = c.check("fixture-abba-dfs", abba_body);
    let f = report.failure.expect("DFS must reach the deadlocking interleaving");
    assert_eq!(f.kind, FailureKind::Deadlock);
}
