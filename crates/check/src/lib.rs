#![warn(missing_docs)]

//! `zi-check`: a loom-style deterministic concurrency model checker.
//!
//! The workspace's concurrency protocols (the generation barrier in
//! `zi-comm`, the write-behind engine and checkpoint store in `zi-nvme`,
//! the buffer pools in `zi-memory`) are written against the `zi-sync`
//! primitives. In a normal build those compile to zero-cost passthroughs
//! over `parking_lot`/`std`. Under `RUSTFLAGS="--cfg zi_check"` every
//! acquire/release/wait/notify/load/store instead routes through the
//! runtime in this crate, which:
//!
//! * runs the test body under a **deterministic virtual-time scheduler**
//!   that serializes threads and explores many distinct interleavings
//!   (seeded random sampling by default, or bounded DFS with a
//!   context-switch bound in the CHESS lineage);
//! * performs **vector-clock happens-before race detection** on
//!   instrumented atomics and [`zi_sync::RaceCell`]-style shared cells;
//! * detects **deadlocks and lost wakeups** via the wait-for graph,
//!   reporting the full cycle with per-thread backtraces;
//! * makes every failure **replayable**: the failing schedule's seed (or
//!   exact decision trace) is printed, and `ZI_CHECK_SEED` /
//!   `ZI_CHECK_TRACE` re-run exactly that schedule.
//!
//! Without `--cfg zi_check`, [`model`] simply runs the body once on real
//! primitives, so harnesses double as plain concurrency smoke tests.
//!
//! # Environment knobs (zi_check builds)
//!
//! | variable              | meaning                                        |
//! |-----------------------|------------------------------------------------|
//! | `ZI_CHECK_SCHEDULES`  | schedules to explore per harness (default 2000)|
//! | `ZI_CHECK_SEED`       | replay exactly one schedule with this seed     |
//! | `ZI_CHECK_TRACE`      | replay one schedule from a decision trace      |
//! | `ZI_CHECK_MODE`       | `random` (default) or `dfs`                    |
//! | `ZI_CHECK_MAX_STEPS`  | per-schedule step bound (default 50000)        |
//! | `ZI_CHECK_PREEMPTIONS`| context-switch bound for `dfs` (default 2)     |
//! | `ZI_CHECK_BACKTRACE`  | `0` disables blocked-thread backtrace capture  |

#[cfg(zi_check)]
mod explore;
#[cfg(zi_check)]
#[doc(hidden)]
pub mod rt;

use std::fmt;

/// Why a schedule failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailureKind {
    /// No thread can make progress and no timed wait remains.
    Deadlock,
    /// A happens-before data race on a shared cell.
    DataRace,
    /// A model thread panicked (assertion failure in the body).
    Panic,
    /// The schedule exceeded the step bound (livelock suspect).
    TooDeep,
}

impl fmt::Display for FailureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FailureKind::Deadlock => write!(f, "deadlock / lost wakeup"),
            FailureKind::DataRace => write!(f, "data race"),
            FailureKind::Panic => write!(f, "panic"),
            FailureKind::TooDeep => write!(f, "step bound exceeded"),
        }
    }
}

/// A failing schedule: what went wrong and how to replay it.
#[derive(Debug, Clone)]
pub struct Failure {
    /// Failure class.
    pub kind: FailureKind,
    /// Human-readable diagnosis (wait-for cycle, racing accesses, panic
    /// message), including captured backtraces where available.
    pub message: String,
    /// Seed of the failing schedule (random mode).
    pub seed: Option<u64>,
    /// Exact decision trace of the failing schedule; replayable via
    /// `ZI_CHECK_TRACE`.
    pub trace: String,
}

impl fmt::Display for Failure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "zi-check: {}", self.kind)?;
        writeln!(f, "{}", self.message)?;
        if let Some(seed) = self.seed {
            writeln!(f, "replay: ZI_CHECK_SEED={seed}")?;
        }
        write!(f, "replay: ZI_CHECK_TRACE={}", self.trace)
    }
}

/// Outcome of checking one harness.
#[derive(Debug, Clone)]
pub struct Report {
    /// Schedules executed.
    pub schedules: usize,
    /// Distinct decision traces among them.
    pub distinct: usize,
    /// Total scheduler decisions across all schedules.
    pub steps: u64,
    /// DFS only: the bounded space was fully enumerated.
    pub exhausted: bool,
    /// First failing schedule, if any.
    pub failure: Option<Failure>,
}

impl Report {
    /// True when no schedule failed.
    pub fn passed(&self) -> bool {
        self.failure.is_none()
    }

    /// Coverage gate used by the harness tests: either the configured
    /// number of distinct schedules was reached or the (bounded) space
    /// was exhausted outright.
    pub fn covered(&self, distinct_target: usize) -> bool {
        self.distinct >= distinct_target || self.exhausted
    }
}

/// Exploration strategy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Mode {
    /// Seeded random sampling of schedules; every iteration's seed is
    /// derived from the base seed and printed on failure.
    Random,
    /// Bounded depth-first enumeration with a context-switch
    /// (preemption) bound — systematic, CHESS-style.
    Dfs,
}

/// Configurable model checker. [`Checker::from_env`] honours the
/// `ZI_CHECK_*` environment variables; [`model`] is the
/// assert-on-failure convenience wrapper harness tests use.
#[derive(Debug, Clone)]
pub struct Checker {
    /// Exploration strategy.
    pub mode: Mode,
    /// Schedules to run (random mode) or cap (dfs mode).
    pub schedules: usize,
    /// Base seed for random mode.
    pub seed: u64,
    /// Per-schedule decision bound.
    pub max_steps: u64,
    /// Context-switch bound for dfs mode.
    pub preemptions: usize,
}

impl Default for Checker {
    fn default() -> Self {
        Checker { mode: Mode::Random, schedules: 2000, seed: 0x5eed_2170, max_steps: 50_000, preemptions: 2 }
    }
}

impl Checker {
    /// A checker configured from the `ZI_CHECK_*` environment.
    pub fn from_env() -> Self {
        let mut c = Checker::default();
        let get = |k: &str| std::env::var(k).ok();
        if let Some(v) = get("ZI_CHECK_MODE") {
            c.mode = if v == "dfs" { Mode::Dfs } else { Mode::Random };
        }
        if let Some(v) = get("ZI_CHECK_SCHEDULES").and_then(|v| v.parse().ok()) {
            c.schedules = v;
        }
        if let Some(v) = get("ZI_CHECK_SEED").and_then(|v| v.parse().ok()) {
            c.seed = v;
        }
        if let Some(v) = get("ZI_CHECK_MAX_STEPS").and_then(|v| v.parse().ok()) {
            c.max_steps = v;
        }
        if let Some(v) = get("ZI_CHECK_PREEMPTIONS").and_then(|v| v.parse().ok()) {
            c.preemptions = v;
        }
        c
    }

    /// Explore `body` under this configuration and report the outcome
    /// without panicking (used by the checker's own false-negative
    /// regression fixtures).
    #[cfg(zi_check)]
    pub fn check<F>(&self, name: &str, body: F) -> Report
    where
        F: Fn() + Send + Sync + 'static,
    {
        rt::drive(self, name, std::sync::Arc::new(body))
    }

    /// Re-run exactly one schedule from a recorded decision trace (the
    /// `Failure::trace` string). Programmatic equivalent of
    /// `ZI_CHECK_TRACE`.
    #[cfg(zi_check)]
    pub fn replay_trace<F>(&self, name: &str, trace: &str, body: F) -> Report
    where
        F: Fn() + Send + Sync + 'static,
    {
        rt::replay_trace(self, name, trace, std::sync::Arc::new(body))
    }

    /// Re-run exactly one schedule from its seed (the `Failure::seed`
    /// value). Programmatic equivalent of `ZI_CHECK_SEED`.
    #[cfg(zi_check)]
    pub fn replay_seed<F>(&self, name: &str, seed: u64, body: F) -> Report
    where
        F: Fn() + Send + Sync + 'static,
    {
        rt::replay_seed(self, name, seed, std::sync::Arc::new(body))
    }

    /// Passthrough build: run the body once on real primitives,
    /// converting a panic into a [`FailureKind::Panic`] report.
    #[cfg(not(zi_check))]
    pub fn check<F>(&self, name: &str, body: F) -> Report
    where
        F: Fn() + Send + Sync + 'static,
    {
        let name = name.to_string();
        let handle = std::thread::Builder::new()
            .name(format!("zi-check-{name}"))
            .spawn(body)
            .expect("spawn passthrough body");
        let failure = handle.join().err().map(|p| Failure {
            kind: FailureKind::Panic,
            message: format!("{name}: {}", panic_message(p.as_ref())),
            seed: None,
            trace: String::new(),
        });
        Report { schedules: 1, distinct: 1, steps: 0, exhausted: false, failure }
    }
}

/// Render a panic payload as text.
pub(crate) fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// True when this build routes `zi-sync` through the model checker.
pub fn enabled() -> bool {
    cfg!(zi_check)
}

/// Model-check `body` with the environment-configured checker, panicking
/// with a replayable diagnosis on the first failing schedule. In
/// passthrough builds this runs the body exactly once.
pub fn model<F>(name: &str, body: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    let report = Checker::from_env().check(name, body);
    if let Some(f) = &report.failure {
        panic!("harness `{name}` failed after {} schedules\n{f}", report.schedules);
    }
    report
}
