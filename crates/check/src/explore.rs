//! Schedule exploration: seeded randomness, replayable decision traces,
//! and the bounded-DFS backtracking driver.

/// SplitMix64 — tiny, seedable, deterministic.
pub struct SplitMix64(pub u64);

impl SplitMix64 {
    pub fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Pick uniformly in `0..n` (n ≥ 1).
    pub fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// Derive the per-iteration seed from a base seed.
pub fn iter_seed(base: u64, iteration: u64) -> u64 {
    let mut rng = SplitMix64(base ^ iteration.wrapping_mul(0xa076_1d64_78bd_642f));
    rng.next()
}

/// One recorded scheduler decision: `chosen` out of `options`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decision {
    pub options: u32,
    pub chosen: u32,
}

/// Decision source for one schedule: an optional replay script followed
/// by seeded randomness. Every decision (including condvar-waiter picks)
/// flows through here, so a recorded trace replays an entire schedule.
pub struct Chooser {
    script: Vec<u32>,
    pos: usize,
    /// Beyond the script: random (sampling mode) or always-first
    /// (deterministic DFS default policy).
    rng: Option<SplitMix64>,
    pub record: Vec<Decision>,
}

impl Chooser {
    pub fn random(seed: u64) -> Self {
        Chooser { script: Vec::new(), pos: 0, rng: Some(SplitMix64(seed)), record: Vec::new() }
    }

    /// Follow `script`, then fall back to the deterministic first-choice
    /// policy (DFS and trace replay).
    pub fn scripted(script: Vec<u32>) -> Self {
        Chooser { script, pos: 0, rng: None, record: Vec::new() }
    }

    /// Choose an index in `0..n`. `n == 1` is still recorded so DFS
    /// depth counting stays aligned across replays with different
    /// enabled sets (a trace is self-describing).
    pub fn choose(&mut self, n: usize) -> usize {
        debug_assert!(n >= 1);
        let c = if n == 1 {
            0
        } else if self.pos < self.script.len() {
            (self.script[self.pos] as usize).min(n - 1)
        } else {
            match &mut self.rng {
                Some(rng) => rng.below(n),
                None => 0,
            }
        };
        self.pos += 1;
        self.record.push(Decision { options: n as u32, chosen: c as u32 });
        c
    }

}

/// FNV-1a hash of a decision trace — the distinct-schedule fingerprint.
pub fn fingerprint_record(record: &[Decision]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for d in record {
        for v in [d.options, d.chosen] {
            for b in v.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1_0000_01b3);
            }
        }
    }
    h
}

/// Encode a decision trace as the compact `ZI_CHECK_TRACE` string.
pub fn encode_trace(record: &[Decision]) -> String {
    let mut out = String::new();
    for (i, d) in record.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&d.chosen.to_string());
    }
    if out.is_empty() {
        out.push('-');
    }
    out
}

/// Decode a `ZI_CHECK_TRACE` string back into a replay script.
pub fn decode_trace(s: &str) -> Vec<u32> {
    if s == "-" {
        return Vec::new();
    }
    s.split(',').filter_map(|t| t.trim().parse().ok()).collect()
}

/// Given the decision record of the schedule just run, produce the
/// script for the next DFS schedule, or `None` when the bounded space is
/// exhausted: backtrack to the deepest decision with an unexplored
/// alternative and advance it.
pub fn dfs_next(record: &[Decision]) -> Option<Vec<u32>> {
    let mut depth = record.len();
    while depth > 0 {
        let d = record[depth - 1];
        if d.chosen + 1 < d.options {
            let mut script: Vec<u32> = record[..depth - 1].iter().map(|d| d.chosen).collect();
            script.push(d.chosen + 1);
            return Some(script);
        }
        depth -= 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let (mut a, mut b) = (SplitMix64(42), SplitMix64(42));
        for _ in 0..32 {
            assert_eq!(a.next(), b.next());
        }
    }

    #[test]
    fn trace_round_trip() {
        let rec = vec![
            Decision { options: 3, chosen: 2 },
            Decision { options: 1, chosen: 0 },
            Decision { options: 2, chosen: 1 },
        ];
        assert_eq!(decode_trace(&encode_trace(&rec)), vec![2, 0, 1]);
        assert_eq!(decode_trace("-"), Vec::<u32>::new());
    }

    #[test]
    fn dfs_enumerates_a_tiny_tree() {
        // Tree: depth-2, binary at each level → 4 leaves.
        let mut script = Vec::new();
        let mut seen = Vec::new();
        loop {
            // Simulate a run that makes two binary decisions per script.
            let mut ch = Chooser::scripted(script.clone());
            let a = ch.choose(2);
            let b = ch.choose(2);
            seen.push((a, b));
            match dfs_next(&ch.record) {
                Some(s) => script = s,
                None => break,
            }
        }
        assert_eq!(seen, vec![(0, 0), (0, 1), (1, 0), (1, 1)]);
    }
}
