//! The model-checking runtime behind `zi-sync` (compiled only under
//! `--cfg zi_check`).
//!
//! Execution model: every `zi-sync` operation is a *yield point*. The
//! calling thread publishes the operation it is about to perform and
//! parks; a scheduler (running on the checker's driver thread) waits
//! until every live thread is parked, computes the set of threads whose
//! pending operation is *enabled*, picks one (an exploration decision),
//! applies the operation's effect on the modeled object state — vector
//! clocks included — and grants that thread the baton. Exactly one model
//! thread runs at any instant, so the real `std::sync` primitives the
//! `zi-sync` wrappers keep underneath never contend; they only preserve
//! memory safety if the model is ever wrong.
//!
//! Time is virtual: it advances only when no thread is enabled, waking
//! the earliest timed wait (`Condvar::wait_for`, `sleep`). A state where
//! nothing is enabled and no timed wait remains is a deadlock (or lost
//! wakeup); the runtime reports the wait-for cycle with the backtrace
//! captured when each thread blocked.

use std::backtrace::Backtrace;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex, OnceLock};
use std::time::Duration;

use crate::explore::{self, Chooser};
use crate::{Checker, Failure, FailureKind, Mode, Report};

/// Model-thread identifier (index into the run's thread table).
pub type ThreadId = usize;
/// Modeled-object identifier (index into the run's object table).
pub type ObjId = usize;

const MAX_THREADS: usize = 128;

// ---------------------------------------------------------------------------
// Globals

struct Rt {
    g: StdMutex<Global>,
    sched: StdCondvar,
}

struct Global {
    gen: u32,
    run: Option<Run>,
}

static RT: OnceLock<Rt> = OnceLock::new();
/// Mirror of the active run generation for the cheap `in_model` check
/// (0 = no active run).
static CURRENT_GEN: AtomicU32 = AtomicU32::new(0);
/// Serializes concurrent `model()` calls from parallel test threads.
static DRIVE_LOCK: OnceLock<StdMutex<()>> = OnceLock::new();

fn rt() -> &'static Rt {
    RT.get_or_init(|| Rt { g: StdMutex::new(Global { gen: 0, run: None }), sched: StdCondvar::new() })
}

thread_local! {
    /// (run generation, model thread id) for model threads.
    static TLS: std::cell::Cell<Option<(u32, ThreadId)>> = const { std::cell::Cell::new(None) };
    /// Panic hook drops the rendered panic (message + location + backtrace)
    /// here for `thread_finish` to pick up.
    static PANIC_SLOT: std::cell::RefCell<Option<String>> =
        const { std::cell::RefCell::new(None) };
}

/// Panic payload used to unwind model threads when a run aborts. Public
/// so `zi-sync` can rethrow it out of blocking operations.
pub struct AbortToken;

/// True when the calling thread is a model thread of the active run.
pub fn in_model() -> bool {
    let gen = CURRENT_GEN.load(Ordering::Acquire);
    gen != 0 && TLS.with(|t| t.get().map(|(g, _)| g) == Some(gen))
}

fn tls_ids() -> Option<(u32, ThreadId)> {
    let gen = CURRENT_GEN.load(Ordering::Acquire);
    if gen == 0 {
        return None;
    }
    TLS.with(|t| t.get()).filter(|(g, _)| *g == gen)
}

// ---------------------------------------------------------------------------
// Vector clocks

#[derive(Debug, Clone, Default)]
struct VClock(Vec<u64>);

impl VClock {
    fn get(&self, tid: ThreadId) -> u64 {
        self.0.get(tid).copied().unwrap_or(0)
    }

    fn incr(&mut self, tid: ThreadId) {
        if self.0.len() <= tid {
            self.0.resize(tid + 1, 0);
        }
        self.0[tid] += 1;
    }

    fn join(&mut self, other: &VClock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (a, b) in self.0.iter_mut().zip(other.0.iter()) {
            *a = (*a).max(*b);
        }
    }
}

// ---------------------------------------------------------------------------
// Threads, objects, pending operations

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    /// OS thread created, not yet parked at its first yield point.
    Spawning,
    /// Holds the baton.
    Running,
    /// Parked at a yield point with a pending op.
    Parked,
    Finished,
}

/// Atomic access class (orderings collapsed to their synchronization
/// strength; `SeqCst` maps to the strongest class).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Acc {
    /// Load with acquire (or seq-cst) ordering.
    LoadAcq,
    /// Load with relaxed ordering.
    LoadRlx,
    /// Store with release (or seq-cst) ordering.
    StoreRel,
    /// Store with relaxed ordering.
    StoreRlx,
    /// Read-modify-write with acquire-release (or seq-cst) ordering.
    RmwAcqRel,
    /// Read-modify-write with relaxed ordering.
    RmwRlx,
}

#[derive(Debug, Clone)]
enum Pend {
    /// First yield of a freshly spawned thread.
    Start,
    MutexLock { m: ObjId, from_cv: Option<bool> },
    MutexTryLock { m: ObjId },
    MutexUnlock { m: ObjId },
    RwLock { l: ObjId, write: bool },
    RwUnlock { l: ObjId, write: bool },
    /// First phase of a condvar wait: always enabled; its *effect*
    /// releases the mutex and registers the waiter, then leaves the
    /// thread parked as `CondWaiting`. Making the wait-entry a scheduled
    /// step (instead of applying it at publish) is what lets the checker
    /// order another thread's notify *between* a waiter's predicate
    /// check and its registration — the lost-wakeup window.
    CondEnter { cv: ObjId, m: ObjId, until: Option<u64> },
    /// Disabled until a notify or timeout transitions it to `MutexLock`.
    CondWaiting { cv: ObjId, m: ObjId, until: Option<u64> },
    Notify { cv: ObjId, all: bool },
    Atomic { a: ObjId, acc: Acc },
    CellAccess { c: ObjId, write: bool },
    Send { c: ObjId },
    Recv { c: ObjId },
    TryRecv { c: ObjId },
    Join { t: ThreadId },
    Sleep { until: u64 },
    Yield,
}

impl Pend {
    /// Objects this op touches, for the independence reduction. `None`
    /// means "conservatively dependent with everything".
    fn objects(&self) -> Option<(ObjId, Option<ObjId>)> {
        match self {
            Pend::MutexLock { m, .. }
            | Pend::MutexTryLock { m }
            | Pend::MutexUnlock { m } => Some((*m, None)),
            Pend::RwLock { l, .. } | Pend::RwUnlock { l, .. } => Some((*l, None)),
            Pend::CondEnter { cv, m, .. } | Pend::CondWaiting { cv, m, .. } => {
                Some((*cv, Some(*m)))
            }
            Pend::Notify { cv, .. } => Some((*cv, None)),
            Pend::Atomic { a, .. } => Some((*a, None)),
            Pend::CellAccess { c, .. } => Some((*c, None)),
            Pend::Send { c } | Pend::Recv { c } | Pend::TryRecv { c } => Some((*c, None)),
            Pend::Start | Pend::Join { .. } | Pend::Sleep { .. } | Pend::Yield => None,
        }
    }

    /// Ops that are always enabled, touch exactly their listed objects,
    /// and never change another thread's enabledness when the objects
    /// are disjoint — safe to run without a branch point when
    /// independent of every other enabled op.
    fn is_local(&self) -> bool {
        matches!(
            self,
            Pend::MutexUnlock { .. }
                | Pend::RwUnlock { .. }
                | Pend::Atomic { .. }
                | Pend::CellAccess { .. }
        )
    }

    fn describe(&self) -> String {
        match self {
            Pend::Start => "starting".into(),
            Pend::MutexLock { m, from_cv: None } => format!("lock mutex #{m}"),
            Pend::MutexLock { m, from_cv: Some(_) } => {
                format!("re-lock mutex #{m} after condvar wake")
            }
            Pend::MutexTryLock { m } => format!("try-lock mutex #{m}"),
            Pend::MutexUnlock { m } => format!("unlock mutex #{m}"),
            Pend::RwLock { l, write: true } => format!("write-lock rwlock #{l}"),
            Pend::RwLock { l, write: false } => format!("read-lock rwlock #{l}"),
            Pend::RwUnlock { l, .. } => format!("unlock rwlock #{l}"),
            Pend::CondEnter { cv, m, .. } => {
                format!("enter wait on condvar #{cv} (mutex #{m})")
            }
            Pend::CondWaiting { cv, m, until: None } => {
                format!("wait on condvar #{cv} (mutex #{m}, no timeout)")
            }
            Pend::CondWaiting { cv, m, until: Some(u) } => {
                format!("wait on condvar #{cv} (mutex #{m}, timeout at t={u}ns)")
            }
            Pend::Notify { cv, all: true } => format!("notify_all condvar #{cv}"),
            Pend::Notify { cv, all: false } => format!("notify_one condvar #{cv}"),
            Pend::Atomic { a, acc } => format!("atomic {acc:?} on #{a}"),
            Pend::CellAccess { c, write: true } => format!("write shared cell #{c}"),
            Pend::CellAccess { c, write: false } => format!("read shared cell #{c}"),
            Pend::Send { c } => format!("send on channel #{c}"),
            Pend::Recv { c } => format!("receive on channel #{c}"),
            Pend::TryRecv { c } => format!("try-receive on channel #{c}"),
            Pend::Join { t } => format!("join thread {t}"),
            Pend::Sleep { until } => format!("sleep until t={until}ns"),
            Pend::Yield => "yield".into(),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Resume {
    Go,
    /// Condvar wake: `true` = timed out, `false` = notified.
    CondResumed(bool),
    TryLock(bool),
    SendOk { receivers_alive: bool },
    RecvData,
    RecvDisconnected,
    TryRecvData,
    TryRecvEmpty,
    TryRecvDisconnected,
    Aborted,
}

#[derive(Debug, Clone)]
struct Access {
    tid: ThreadId,
    clk: u64,
    bt: Option<Arc<Backtrace>>,
}

enum Obj {
    Mutex { owner: Option<ThreadId>, vc: VClock },
    Cond { waiters: Vec<ThreadId> },
    Rw { writer: Option<ThreadId>, readers: usize, vc: VClock },
    Atomic { vc: VClock },
    Chan { len: usize, cap: Option<usize>, senders: usize, receivers: usize, msg_vc: VecDeque<VClock> },
    Cell { write: Option<Access>, reads: Vec<Access> },
}

type Go = Arc<(StdMutex<bool>, StdCondvar)>;

struct Th {
    name: String,
    status: Status,
    pending: Option<Pend>,
    resume: Option<Resume>,
    vc: VClock,
    go: Go,
    blocked_bt: Option<Arc<Backtrace>>,
}

struct RunFailure {
    kind: FailureKind,
    message: String,
}

struct Run {
    gen: u32,
    threads: Vec<Th>,
    objects: Vec<Obj>,
    time_ns: u64,
    steps: u64,
    max_steps: u64,
    abort: bool,
    failure: Option<RunFailure>,
    chooser: Chooser,
    last_granted: Option<ThreadId>,
    preemptions_used: usize,
    preemption_bound: usize,
    capture_backtraces: bool,
}

impl Run {
    fn new_thread(&mut self, name: String, vc: VClock, status: Status) -> ThreadId {
        let tid = self.threads.len();
        assert!(tid < MAX_THREADS, "zi-check: more than {MAX_THREADS} model threads");
        let mut vc = vc;
        vc.incr(tid);
        self.threads.push(Th {
            name,
            status,
            pending: None,
            resume: None,
            vc,
            go: Arc::new((StdMutex::new(false), StdCondvar::new())),
            blocked_bt: None,
        });
        tid
    }

    fn fail(&mut self, kind: FailureKind, message: String) {
        if self.failure.is_none() {
            self.failure = Some(RunFailure { kind, message });
        }
        self.abort = true;
    }
}

// ---------------------------------------------------------------------------
// Lazy per-run object registration

/// One modeled object's registration slot, embedded in each `zi-sync`
/// primitive. Packs `(run generation << 32) | (object id + 1)` so a
/// primitive created in one schedule re-registers cleanly in the next.
pub struct ObjCell(AtomicU64);

impl ObjCell {
    /// A fresh, unregistered slot (const so primitives stay const-new).
    pub const fn new() -> Self {
        ObjCell(AtomicU64::new(0))
    }
}

impl Default for ObjCell {
    fn default() -> Self {
        Self::new()
    }
}

/// Register (or look up) `cell` in the active run. Only call from a
/// model thread while holding the global lock.
fn ensure_obj(run: &mut Run, cell: &ObjCell, mk: impl FnOnce() -> Obj) -> ObjId {
    let packed = cell.0.load(Ordering::Relaxed);
    let (gen, id1) = ((packed >> 32) as u32, (packed & 0xffff_ffff) as usize);
    if gen == run.gen && id1 > 0 {
        return id1 - 1;
    }
    let id = run.objects.len();
    run.objects.push(mk());
    cell.0.store(((run.gen as u64) << 32) | (id as u64 + 1), Ordering::Relaxed);
    id
}

// ---------------------------------------------------------------------------
// The yield-point protocol

/// Capture an unresolved backtrace cheaply; symbol resolution happens
/// lazily only when a report renders it.
fn capture_bt() -> Option<Arc<Backtrace>> {
    Some(Arc::new(Backtrace::force_capture()))
}

/// Publish `p` as the calling thread's pending op, park until granted,
/// and return the scheduler's resume value. Returns `Resume::Aborted`
/// when the run is tearing down.
fn step(p: Pend) -> Resume {
    let (gen, tid) = match tls_ids() {
        Some(ids) => ids,
        None => return Resume::Aborted,
    };
    let r = rt();
    let go;
    {
        let mut g = r.g.lock().unwrap_or_else(|e| e.into_inner());
        let run = match g.run.as_mut() {
            Some(run) if run.gen == gen => run,
            _ => return Resume::Aborted,
        };
        if run.abort {
            return Resume::Aborted;
        }
        // Capture the park-site backtrace on the thread's own stack for
        // ops that may block: anything not immediately enabled, plus
        // wait-entry (which becomes a disabled `CondWaiting` after its
        // effect applies).
        let may_block =
            matches!(p, Pend::CondEnter { .. }) || !op_enabled(run, &p, tid);
        if run.capture_backtraces && may_block {
            run.threads[tid].blocked_bt = capture_bt();
        }
        let th = &mut run.threads[tid];
        th.pending = Some(p);
        th.status = Status::Parked;
        go = th.go.clone();
        r.sched.notify_all();
    }
    // Park outside the global lock.
    {
        let (m, cv) = &*go;
        let mut flag = m.lock().unwrap_or_else(|e| e.into_inner());
        while !*flag {
            flag = cv.wait(flag).unwrap_or_else(|e| e.into_inner());
        }
        *flag = false;
    }
    let mut g = r.g.lock().unwrap_or_else(|e| e.into_inner());
    match g.run.as_mut() {
        Some(run) if run.gen == gen => {
            run.threads[tid].resume.take().unwrap_or(Resume::Aborted)
        }
        _ => Resume::Aborted,
    }
}

/// Non-yielding state mutation (channel endpoint clone/drop): applies
/// directly under the global lock without a scheduling decision.
fn with_run<T>(f: impl FnOnce(&mut Run, ThreadId) -> T) -> Option<T> {
    let (gen, tid) = tls_ids()?;
    let r = rt();
    let mut g = r.g.lock().unwrap_or_else(|e| e.into_inner());
    let run = g.run.as_mut().filter(|run| run.gen == gen)?;
    let out = f(run, tid);
    r.sched.notify_all();
    Some(out)
}

/// Raise the abort unwind out of a blocking `zi-sync` op. Never called
/// while the thread is already panicking (that would escalate to a
/// process abort); abort-during-unwind paths degrade to real primitives
/// instead.
fn raise_abort() -> ! {
    std::panic::panic_any(AbortToken)
}

// ---------------------------------------------------------------------------
// Public op API consumed by zi-sync

/// Model a mutex acquisition; returns the object id to release with
/// [`mutex_unlock`], or `None` when not running under the model.
pub fn mutex_lock(cell: &ObjCell) -> Option<ObjId> {
    if !in_model() {
        return None;
    }
    let m = with_run(|run, _| {
        ensure_obj(run, cell, || Obj::Mutex { owner: None, vc: VClock::default() })
    })?;
    match step(Pend::MutexLock { m, from_cv: None }) {
        Resume::Aborted if !std::thread::panicking() => raise_abort(),
        Resume::Aborted => None, // unwinding: fall back to the real lock
        _ => Some(m),
    }
}

/// Model a non-blocking acquisition attempt: `Some((id, acquired))`.
pub fn mutex_try_lock(cell: &ObjCell) -> Option<(ObjId, bool)> {
    if !in_model() {
        return None;
    }
    let m = with_run(|run, _| {
        ensure_obj(run, cell, || Obj::Mutex { owner: None, vc: VClock::default() })
    })?;
    match step(Pend::MutexTryLock { m }) {
        Resume::Aborted if !std::thread::panicking() => raise_abort(),
        Resume::Aborted => None,
        Resume::TryLock(ok) => Some((m, ok)),
        _ => Some((m, false)),
    }
}

/// Model releasing mutex `m`. Never raises: release must stay safe on
/// abort-unwind paths.
pub fn mutex_unlock(m: ObjId) {
    if !in_model() {
        return;
    }
    let _ = step(Pend::MutexUnlock { m });
}

/// Model `Condvar::wait[_for]`: releases `m`, parks as a waiter, and
/// returns `true` if the wake was a timeout. The modeled mutex is
/// re-acquired before this returns.
pub fn cond_wait(cell: &ObjCell, m: ObjId, timeout: Option<Duration>) -> bool {
    if !in_model() {
        return false;
    }
    let Some((cv, until)) = with_run(|run, _| {
        let cv = ensure_obj(run, cell, || Obj::Cond { waiters: Vec::new() });
        let until = timeout.map(|d| run.time_ns.saturating_add(d.as_nanos() as u64));
        (cv, until)
    }) else {
        return false;
    };
    match step(Pend::CondEnter { cv, m, until }) {
        Resume::Aborted if !std::thread::panicking() => raise_abort(),
        Resume::CondResumed(timed_out) => timed_out,
        _ => false,
    }
}

/// Model a notify; wakes one (exploration-chosen) or all waiters.
pub fn cond_notify(cell: &ObjCell, all: bool) {
    if !in_model() {
        return;
    }
    let Some(cv) = with_run(|run, _| ensure_obj(run, cell, || Obj::Cond { waiters: Vec::new() }))
    else {
        return;
    };
    if matches!(step(Pend::Notify { cv, all }), Resume::Aborted) {
        // Notifies can sit on unwind paths; swallow the abort here and
        // let the next blocking op raise it.
    }
}

/// Model an rwlock acquisition; returns the id for [`rw_unlock`].
pub fn rw_lock(cell: &ObjCell, write: bool) -> Option<ObjId> {
    if !in_model() {
        return None;
    }
    let l = with_run(|run, _| {
        ensure_obj(run, cell, || Obj::Rw { writer: None, readers: 0, vc: VClock::default() })
    })?;
    match step(Pend::RwLock { l, write }) {
        Resume::Aborted if !std::thread::panicking() => raise_abort(),
        Resume::Aborted => None,
        _ => Some(l),
    }
}

/// Model an rwlock release.
pub fn rw_unlock(l: ObjId, write: bool) {
    if !in_model() {
        return;
    }
    let _ = step(Pend::RwUnlock { l, write });
}

/// Model an atomic access (the value itself lives in the real atomic the
/// wrapper keeps; the model tracks ordering-dependent happens-before).
pub fn atomic_access(cell: &ObjCell, acc: Acc) {
    if !in_model() {
        return;
    }
    let Some(a) = with_run(|run, _| ensure_obj(run, cell, || Obj::Atomic { vc: VClock::default() }))
    else {
        return;
    };
    if matches!(step(Pend::Atomic { a, acc }), Resume::Aborted) && !std::thread::panicking() {
        raise_abort();
    }
}

/// Model an access to a plain shared cell (`zi_sync::RaceCell`); the
/// happens-before race detector runs here.
pub fn cell_access(cell: &ObjCell, write: bool) {
    if !in_model() {
        return;
    }
    let Some(c) = with_run(|run, _| {
        ensure_obj(run, cell, || Obj::Cell { write: None, reads: Vec::new() })
    }) else {
        return;
    };
    if matches!(step(Pend::CellAccess { c, write }), Resume::Aborted) && !std::thread::panicking() {
        raise_abort();
    }
}

/// Register a channel's live endpoint counts on first model contact.
fn ensure_chan(run: &mut Run, cell: &ObjCell, senders: usize, receivers: usize, len: usize, cap: Option<usize>) -> ObjId {
    ensure_obj(run, cell, || Obj::Chan {
        len,
        cap,
        senders,
        receivers,
        msg_vc: VecDeque::new(),
    })
}

/// Model a (possibly bounded) send. `Some(receivers_alive)`; when
/// `false` the caller must return its value as a send error without
/// enqueuing.
pub fn chan_send(cell: &ObjCell, senders: usize, receivers: usize, len: usize, cap: Option<usize>) -> Option<bool> {
    if !in_model() {
        return None;
    }
    let c = with_run(|run, _| ensure_chan(run, cell, senders, receivers, len, cap))?;
    match step(Pend::Send { c }) {
        Resume::Aborted if !std::thread::panicking() => raise_abort(),
        Resume::Aborted => Some(false),
        Resume::SendOk { receivers_alive } => Some(receivers_alive),
        _ => Some(true),
    }
}

/// Outcome of a modeled blocking receive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvOutcome {
    /// A message is available in the real queue.
    Data,
    /// Queue empty and every sender is gone.
    Disconnected,
}

/// Model a blocking receive.
pub fn chan_recv(cell: &ObjCell, senders: usize, receivers: usize, len: usize, cap: Option<usize>) -> Option<RecvOutcome> {
    if !in_model() {
        return None;
    }
    let c = with_run(|run, _| ensure_chan(run, cell, senders, receivers, len, cap))?;
    match step(Pend::Recv { c }) {
        Resume::Aborted if !std::thread::panicking() => raise_abort(),
        Resume::RecvData => Some(RecvOutcome::Data),
        Resume::RecvDisconnected => Some(RecvOutcome::Disconnected),
        _ => Some(RecvOutcome::Disconnected),
    }
}

/// Outcome of a modeled non-blocking receive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvOutcome {
    /// A message is available.
    Data,
    /// Queue currently empty.
    Empty,
    /// Queue empty and every sender is gone.
    Disconnected,
}

/// Model a non-blocking receive.
pub fn chan_try_recv(cell: &ObjCell, senders: usize, receivers: usize, len: usize, cap: Option<usize>) -> Option<TryRecvOutcome> {
    if !in_model() {
        return None;
    }
    let c = with_run(|run, _| ensure_chan(run, cell, senders, receivers, len, cap))?;
    match step(Pend::TryRecv { c }) {
        Resume::Aborted if !std::thread::panicking() => raise_abort(),
        Resume::TryRecvData => Some(TryRecvOutcome::Data),
        Resume::TryRecvEmpty => Some(TryRecvOutcome::Empty),
        Resume::TryRecvDisconnected => Some(TryRecvOutcome::Disconnected),
        _ => Some(TryRecvOutcome::Disconnected),
    }
}

/// Endpoint clone/drop bookkeeping (non-yielding; enabledness of parked
/// receivers is re-evaluated at the next scheduling decision).
pub fn chan_update_peers(cell: &ObjCell, d_senders: isize, d_receivers: isize) {
    if !in_model() {
        return;
    }
    let _ = with_run(|run, _| {
        let packed = cell.0.load(Ordering::Relaxed);
        let (gen, id1) = ((packed >> 32) as u32, (packed & 0xffff_ffff) as usize);
        if gen != run.gen || id1 == 0 {
            // Never touched by a model op this run: nothing to update —
            // registration will read the real counts when it happens.
            return;
        }
        if let Obj::Chan { senders, receivers, .. } = &mut run.objects[id1 - 1] {
            *senders = senders.saturating_add_signed(d_senders);
            *receivers = receivers.saturating_add_signed(d_receivers);
        }
    });
}

/// Virtual now, or `None` outside a model run.
pub fn now_ns() -> Option<u64> {
    if !in_model() {
        return None;
    }
    with_run(|run, _| run.time_ns)
}

/// Model a sleep; returns `false` when the caller should really sleep.
pub fn sleep(d: Duration) -> bool {
    if !in_model() {
        return false;
    }
    let Some(until) = with_run(|run, _| run.time_ns.saturating_add(d.as_nanos() as u64)) else {
        return false;
    };
    match step(Pend::Sleep { until }) {
        Resume::Aborted if !std::thread::panicking() => raise_abort(),
        _ => true,
    }
}

/// Model a yield; returns `false` outside a model run.
pub fn yield_now() -> bool {
    if !in_model() {
        return false;
    }
    match step(Pend::Yield) {
        Resume::Aborted if !std::thread::panicking() => raise_abort(),
        _ => true,
    }
}

/// Handle a model-thread spawn: `(parent runs this)` creates the child
/// record and returns the token the child attaches with.
#[derive(Debug, Clone, Copy)]
pub struct SpawnToken {
    gen: u32,
    tid: ThreadId,
}

impl SpawnToken {
    /// The child's model thread id.
    pub fn tid(&self) -> ThreadId {
        self.tid
    }
}

/// Model spawning a child thread (a yield point). `None` outside a run.
pub fn spawn_begin(name: &str) -> Option<SpawnToken> {
    if !in_model() {
        return None;
    }
    let gen = tls_ids()?.0;
    // `Start` reused as the pre-spawn yield so the scheduler can
    // interleave before the child exists.
    if matches!(step(Pend::Start), Resume::Aborted) {
        if std::thread::panicking() {
            return None; // unwinding: caller real-spawns unmodeled
        }
        raise_abort();
    }
    let tid = with_run(|run, me| {
        let vc = run.threads[me].vc.clone();
        run.new_thread(name.to_string(), vc, Status::Spawning)
    })?;
    Some(SpawnToken { gen, tid })
}

/// Attach the freshly spawned OS thread to its model record, then park
/// at the initial yield point.
pub fn spawn_attach(tok: SpawnToken) {
    TLS.with(|t| t.set(Some((tok.gen, tok.tid))));
    if matches!(step(Pend::Start), Resume::Aborted) {
        raise_abort();
    }
}

/// How a model thread's body ended.
pub enum FinishKind {
    /// Ran to completion.
    Ok,
    /// Unwound with [`AbortToken`] during run teardown.
    Abort,
    /// Panicked; the argument is the payload rendered as text (the
    /// panic-hook capture, with location and backtrace, wins over it).
    Panic(String),
}

/// Record a model thread's completion.
pub fn thread_finish(kind: FinishKind) {
    let Some((gen, tid)) = tls_ids() else {
        return;
    };
    let r = rt();
    let mut g = r.g.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(run) = g.run.as_mut().filter(|run| run.gen == gen) {
        run.threads[tid].status = Status::Finished;
        run.threads[tid].pending = None;
        if let FinishKind::Panic(payload) = kind {
            let detail = PANIC_SLOT.with(|s| s.borrow_mut().take()).unwrap_or(payload);
            let name = run.threads[tid].name.clone();
            run.fail(FailureKind::Panic, format!("thread `{name}` panicked:\n{detail}"));
            wake_all_parked(run);
        }
    }
    TLS.with(|t| t.set(None));
    r.sched.notify_all();
}

/// Model joining thread `t`; parks until it finishes.
pub fn join(t: ThreadId) {
    if !in_model() {
        return;
    }
    if matches!(step(Pend::Join { t }), Resume::Aborted) && !std::thread::panicking() {
        raise_abort();
    }
}

// ---------------------------------------------------------------------------
// Enabledness, effects, scheduling

fn op_enabled(run: &Run, p: &Pend, tid: ThreadId) -> bool {
    match p {
        Pend::MutexLock { m, .. } => {
            matches!(&run.objects[*m], Obj::Mutex { owner: None, .. })
        }
        Pend::CondWaiting { .. } => false,
        Pend::RwLock { l, write } => match &run.objects[*l] {
            Obj::Rw { writer, readers, .. } => {
                if *write {
                    writer.is_none() && *readers == 0
                } else {
                    writer.is_none()
                }
            }
            _ => true,
        },
        Pend::Send { c } => match &run.objects[*c] {
            Obj::Chan { len, cap, receivers, .. } => {
                *receivers == 0 || cap.map(|cp| *len < cp).unwrap_or(true)
            }
            _ => true,
        },
        Pend::Recv { c } => match &run.objects[*c] {
            Obj::Chan { len, senders, .. } => *len > 0 || *senders == 0,
            _ => true,
        },
        Pend::Join { t } => run.threads[*t].status == Status::Finished,
        Pend::Sleep { until } => run.time_ns >= *until,
        _ => {
            let _ = tid;
            true
        }
    }
}

/// Wake every parked thread with an abort resume (failure teardown).
fn wake_all_parked(run: &mut Run) {
    run.abort = true;
    for th in &mut run.threads {
        if th.status == Status::Parked {
            th.resume = Some(Resume::Aborted);
            th.status = Status::Running;
            let (m, cv) = &*th.go;
            let mut flag = m.lock().unwrap_or_else(|e| e.into_inner());
            *flag = true;
            cv.notify_all();
        }
    }
}

/// Apply the effect of `tid`'s pending op. `Some(resume)` grants the
/// thread the baton; `None` (wait-entry) leaves it parked as a condvar
/// waiter. Called by the scheduler with the global lock held.
fn apply_effect(run: &mut Run, tid: ThreadId) -> Option<Resume> {
    let p = run.threads[tid].pending.take().expect("granted thread has a pending op");
    run.threads[tid].vc.incr(tid);
    Some(match p {
        Pend::CondEnter { cv, m, until } => {
            let tvc = run.threads[tid].vc.clone();
            if let Obj::Mutex { owner, vc } = &mut run.objects[m] {
                debug_assert_eq!(*owner, Some(tid), "condvar wait without holding the mutex");
                *owner = None;
                *vc = tvc;
            }
            if let Obj::Cond { waiters } = &mut run.objects[cv] {
                waiters.push(tid);
            }
            run.threads[tid].pending = Some(Pend::CondWaiting { cv, m, until });
            return None;
        }
        Pend::Start | Pend::Yield => Resume::Go,
        Pend::MutexLock { m, from_cv } => {
            let ovc = match &mut run.objects[m] {
                Obj::Mutex { owner, vc } => {
                    *owner = Some(tid);
                    vc.clone()
                }
                _ => VClock::default(),
            };
            run.threads[tid].vc.join(&ovc);
            match from_cv {
                Some(timed_out) => Resume::CondResumed(timed_out),
                None => Resume::Go,
            }
        }
        Pend::MutexTryLock { m } => {
            let (ok, ovc) = match &mut run.objects[m] {
                Obj::Mutex { owner, vc } => {
                    if owner.is_none() {
                        *owner = Some(tid);
                        (true, vc.clone())
                    } else {
                        (false, VClock::default())
                    }
                }
                _ => (false, VClock::default()),
            };
            if ok {
                run.threads[tid].vc.join(&ovc);
            }
            Resume::TryLock(ok)
        }
        Pend::MutexUnlock { m } => {
            let tvc = run.threads[tid].vc.clone();
            if let Obj::Mutex { owner, vc } = &mut run.objects[m] {
                *owner = None;
                *vc = tvc;
            }
            Resume::Go
        }
        Pend::RwLock { l, write } => {
            let ovc = match &mut run.objects[l] {
                Obj::Rw { writer, readers, vc } => {
                    if write {
                        *writer = Some(tid);
                    } else {
                        *readers += 1;
                    }
                    vc.clone()
                }
                _ => VClock::default(),
            };
            run.threads[tid].vc.join(&ovc);
            Resume::Go
        }
        Pend::RwUnlock { l, write } => {
            let tvc = run.threads[tid].vc.clone();
            if let Obj::Rw { writer, readers, vc } = &mut run.objects[l] {
                if write {
                    *writer = None;
                    *vc = tvc;
                } else {
                    *readers = readers.saturating_sub(1);
                    vc.join(&tvc);
                }
            }
            Resume::Go
        }
        Pend::CondWaiting { .. } => unreachable!("CondWaiting is never granted directly"),
        Pend::Notify { cv, all } => {
            let woken: Vec<ThreadId> = match &mut run.objects[cv] {
                Obj::Cond { waiters } if !waiters.is_empty() => {
                    if all {
                        std::mem::take(waiters)
                    } else {
                        let n = waiters.len();
                        let pick = if n == 1 { 0 } else { run.chooser.choose(n) };
                        vec![waiters.remove(pick)]
                    }
                }
                _ => Vec::new(),
            };
            for w in woken {
                if let Some(Pend::CondWaiting { m, .. }) = run.threads[w].pending.clone() {
                    run.threads[w].pending = Some(Pend::MutexLock { m, from_cv: Some(false) });
                }
            }
            Resume::Go
        }
        Pend::Atomic { a, acc } => {
            if let Obj::Atomic { vc } = &mut run.objects[a] {
                match acc {
                    Acc::LoadAcq => {
                        let ovc = vc.clone();
                        run.threads[tid].vc.join(&ovc);
                    }
                    Acc::StoreRel => vc.join(&run.threads[tid].vc),
                    Acc::RmwAcqRel => {
                        let ovc = vc.clone();
                        run.threads[tid].vc.join(&ovc);
                        vc.join(&run.threads[tid].vc);
                    }
                    Acc::LoadRlx | Acc::StoreRlx | Acc::RmwRlx => {}
                }
            }
            Resume::Go
        }
        Pend::CellAccess { c, write } => {
            let me = Access {
                tid,
                clk: run.threads[tid].vc.get(tid),
                bt: if run.capture_backtraces { capture_bt() } else { None },
            };
            let tvc = run.threads[tid].vc.clone();
            let mut race: Option<(String, Access)> = None;
            if let Obj::Cell { write: w, reads } = &mut run.objects[c] {
                if let Some(prev) = w.as_ref() {
                    if prev.tid != tid && prev.clk > tvc.get(prev.tid) {
                        race = Some(("write".into(), prev.clone()));
                    }
                }
                if write && race.is_none() {
                    for prev in reads.iter() {
                        if prev.tid != tid && prev.clk > tvc.get(prev.tid) {
                            race = Some(("read".into(), prev.clone()));
                            break;
                        }
                    }
                }
                if race.is_none() {
                    if write {
                        *w = Some(me);
                        reads.clear();
                    } else {
                        reads.retain(|a| a.tid != tid);
                        reads.push(me);
                    }
                }
            }
            if let Some((prev_kind, prev)) = race {
                let cur_kind = if write { "write" } else { "read" };
                let cur_name = run.threads[tid].name.clone();
                let prev_name = run.threads[prev.tid].name.clone();
                let mut msg = format!(
                    "unsynchronized {cur_kind} of shared cell #{c} by thread `{cur_name}` \
                     races with a prior {prev_kind} by thread `{prev_name}` \
                     (no happens-before edge)\n"
                );
                if let Some(bt) = &prev.bt {
                    msg.push_str(&format!("--- prior {prev_kind} by `{prev_name}`:\n{bt}\n"));
                }
                msg.push_str(&format!(
                    "--- racing {cur_kind} is thread `{cur_name}`'s current operation\n"
                ));
                run.fail(FailureKind::DataRace, msg);
            }
            Resume::Go
        }
        Pend::Send { c } => {
            let tvc = run.threads[tid].vc.clone();
            match &mut run.objects[c] {
                Obj::Chan { len, receivers, msg_vc, .. } => {
                    if *receivers == 0 {
                        Resume::SendOk { receivers_alive: false }
                    } else {
                        *len += 1;
                        msg_vc.push_back(tvc);
                        Resume::SendOk { receivers_alive: true }
                    }
                }
                _ => Resume::SendOk { receivers_alive: true },
            }
        }
        Pend::Recv { c } => match &mut run.objects[c] {
            Obj::Chan { len, msg_vc, .. } if *len > 0 => {
                *len -= 1;
                if let Some(vc) = msg_vc.pop_front() {
                    run.threads[tid].vc.join(&vc);
                }
                Resume::RecvData
            }
            _ => Resume::RecvDisconnected,
        },
        Pend::TryRecv { c } => match &mut run.objects[c] {
            Obj::Chan { len, msg_vc, .. } if *len > 0 => {
                *len -= 1;
                if let Some(vc) = msg_vc.pop_front() {
                    run.threads[tid].vc.join(&vc);
                }
                Resume::TryRecvData
            }
            Obj::Chan { senders: 0, .. } => Resume::TryRecvDisconnected,
            _ => Resume::TryRecvEmpty,
        },
        Pend::Join { t } => {
            let tvc = run.threads[t].vc.clone();
            run.threads[tid].vc.join(&tvc);
            Resume::Go
        }
        Pend::Sleep { .. } => Resume::Go,
    })
}

/// Describe the wait-for graph at a stuck state: every blocked thread,
/// what it waits for, who holds it, any ownership cycle, and the
/// backtrace captured when the thread blocked.
fn deadlock_report(run: &Run) -> String {
    let mut msg = String::from("no thread can make progress and no timed wait remains\n");
    let mut edges: Vec<Option<ThreadId>> = vec![None; run.threads.len()];
    let mut has_cv_waiter = false;
    for (tid, th) in run.threads.iter().enumerate() {
        if th.status == Status::Finished {
            continue;
        }
        let Some(p) = &th.pending else { continue };
        let holder = match p {
            Pend::MutexLock { m, .. } | Pend::MutexTryLock { m } => match &run.objects[*m] {
                Obj::Mutex { owner, .. } => *owner,
                _ => None,
            },
            Pend::RwLock { l, .. } => match &run.objects[*l] {
                Obj::Rw { writer, .. } => *writer,
                _ => None,
            },
            Pend::Join { t } => Some(*t),
            Pend::CondWaiting { .. } => {
                has_cv_waiter = true;
                None
            }
            _ => None,
        };
        edges[tid] = holder;
        msg.push_str(&format!("  thread `{}` (#{tid}): {}", th.name, p.describe()));
        if let Some(h) = holder {
            msg.push_str(&format!(" — held by thread `{}` (#{h})", run.threads[h].name));
        }
        msg.push('\n');
    }
    // Walk ownership edges for a cycle.
    for start in 0..run.threads.len() {
        let mut seen = vec![false; run.threads.len()];
        let mut cur = start;
        let mut path = vec![start];
        while let Some(next) = edges[cur] {
            if next == start {
                let names: Vec<String> = path
                    .iter()
                    .chain(std::iter::once(&start))
                    .map(|&t| format!("`{}`", run.threads[t].name))
                    .collect();
                msg.push_str(&format!("  wait-for cycle: {}\n", names.join(" → ")));
                break;
            }
            if seen[next] {
                break;
            }
            seen[next] = true;
            path.push(next);
            cur = next;
        }
        if msg.contains("wait-for cycle") {
            break;
        }
    }
    if has_cv_waiter && !msg.contains("wait-for cycle") {
        msg.push_str(
            "  (a condvar waiter with no pending notify and no timeout: lost wakeup)\n",
        );
    }
    for (tid, th) in run.threads.iter().enumerate() {
        if th.status != Status::Finished {
            if let Some(bt) = &th.blocked_bt {
                msg.push_str(&format!(
                    "--- backtrace of thread `{}` (#{tid}) at its blocking operation:\n{bt}\n",
                    th.name
                ));
            }
        }
    }
    msg
}

/// One full scheduling pass over an already-initialized run. Returns
/// when every thread finished or a failure latched.
fn scheduler_loop(r: &Rt) {
    loop {
        let mut g = r.g.lock().unwrap_or_else(|e| e.into_inner());
        // Wait until the world is quiescent: every thread parked or done.
        loop {
            let run = g.run.as_mut().expect("active run");
            let quiescent = run
                .threads
                .iter()
                .all(|t| matches!(t.status, Status::Parked | Status::Finished));
            if quiescent || run.failure.is_some() {
                break;
            }
            let (ng, timeout) = r
                .sched
                .wait_timeout(g, Duration::from_secs(30))
                .unwrap_or_else(|e| e.into_inner());
            g = ng;
            if timeout.timed_out() {
                let run = g.run.as_mut().expect("active run");
                run.fail(
                    FailureKind::TooDeep,
                    "zi-check internal: model threads failed to park within 30s (a \
                     model thread is blocked outside zi-sync primitives?)"
                        .into(),
                );
                wake_all_parked(run);
                return;
            }
        }
        let run = g.run.as_mut().expect("active run");
        if run.failure.is_some() {
            wake_all_parked(run);
            return;
        }
        if run.threads.iter().all(|t| t.status == Status::Finished) {
            return;
        }
        // Enabled set, in thread-id order for determinism.
        let mut enabled: Vec<ThreadId> = Vec::new();
        for (tid, th) in run.threads.iter().enumerate() {
            if th.status == Status::Parked {
                if let Some(p) = &th.pending {
                    if op_enabled(run, p, tid) {
                        enabled.push(tid);
                    }
                }
            }
        }
        if enabled.is_empty() {
            // Virtual time: wake the earliest timed wait, else deadlock.
            let mut earliest: Option<u64> = None;
            for th in &run.threads {
                let until = match (&th.status, &th.pending) {
                    (Status::Parked, Some(Pend::CondWaiting { until: Some(u), .. })) => Some(*u),
                    (Status::Parked, Some(Pend::Sleep { until })) => Some(*until),
                    _ => None,
                };
                if let Some(u) = until {
                    earliest = Some(earliest.map_or(u, |e: u64| e.min(u)));
                }
            }
            match earliest {
                Some(t) => {
                    run.time_ns = run.time_ns.max(t);
                    let now = run.time_ns;
                    let expired: Vec<(ThreadId, ObjId, ObjId)> = run
                        .threads
                        .iter()
                        .enumerate()
                        .filter_map(|(tid, th)| match th.pending {
                            Some(Pend::CondWaiting { cv, m, until: Some(u) }) if u <= now => {
                                Some((tid, cv, m))
                            }
                            _ => None,
                        })
                        .collect();
                    for (tid, cv, m) in expired {
                        // Leave the waiter list too, or a later notify
                        // would be swallowed by an already-woken thread.
                        if let Obj::Cond { waiters } = &mut run.objects[cv] {
                            waiters.retain(|&w| w != tid);
                        }
                        run.threads[tid].pending =
                            Some(Pend::MutexLock { m, from_cv: Some(true) });
                    }
                    continue;
                }
                None => {
                    let report = deadlock_report(run);
                    run.fail(FailureKind::Deadlock, report);
                    wake_all_parked(run);
                    return;
                }
            }
        }
        run.steps += 1;
        if run.steps > run.max_steps {
            run.fail(
                FailureKind::TooDeep,
                format!(
                    "schedule exceeded {} decisions (livelock or unbounded retry loop?)",
                    run.max_steps
                ),
            );
            wake_all_parked(run);
            return;
        }
        // Independence reduction: keep running the last-granted thread
        // without a branch point when its next op is purely local and
        // touches no object any other enabled op touches.
        let chosen = pick_thread(run, &enabled);
        let resume = apply_effect(run, chosen);
        if run.failure.is_some() {
            wake_all_parked(run);
            return;
        }
        run.last_granted = Some(chosen);
        let Some(resume) = resume else {
            // Wait-entry applied: the thread stays parked as a waiter.
            continue;
        };
        let th = &mut run.threads[chosen];
        th.resume = Some(resume);
        th.status = Status::Running;
        th.blocked_bt = None;
        let go = th.go.clone();
        drop(g);
        let (m, cv) = &*go;
        let mut flag = m.lock().unwrap_or_else(|e| e.into_inner());
        *flag = true;
        cv.notify_all();
    }
}

fn pick_thread(run: &mut Run, enabled: &[ThreadId]) -> ThreadId {
    if enabled.len() == 1 {
        return enabled[0];
    }
    // DPOR-style local-op reduction.
    if let Some(prev) = run.last_granted {
        if enabled.contains(&prev) {
            let pp = run.threads[prev].pending.as_ref();
            if let Some(p) = pp {
                if p.is_local() {
                    if let Some((o1, o2)) = p.objects() {
                        let conflicts = enabled.iter().any(|&t| {
                            if t == prev {
                                return false;
                            }
                            match run.threads[t].pending.as_ref().and_then(|q| q.objects()) {
                                Some((q1, q2)) => {
                                    q1 == o1
                                        || Some(q1) == o2
                                        || q2 == Some(o1)
                                        || (q2.is_some() && q2 == o2)
                                }
                                None => true,
                            }
                        });
                        if !conflicts {
                            return prev;
                        }
                    }
                }
            }
        }
    }
    // Preemption (context-switch) bound: once spent, stay on the running
    // thread while it remains enabled.
    let options: Vec<ThreadId> = if run.preemptions_used >= run.preemption_bound {
        match run.last_granted {
            Some(prev) if enabled.contains(&prev) => vec![prev],
            _ => enabled.to_vec(),
        }
    } else {
        enabled.to_vec()
    };
    let idx = if options.len() == 1 { 0 } else { run.chooser.choose(options.len()) };
    let chosen = options[idx];
    if let Some(prev) = run.last_granted {
        if chosen != prev && enabled.contains(&prev) {
            run.preemptions_used += 1;
        }
    }
    chosen
}

// ---------------------------------------------------------------------------
// Panic hook

fn install_hook() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().is::<AbortToken>() {
                return; // teardown unwind: silent by design
            }
            if in_model() {
                let bt = Backtrace::force_capture();
                let msg = crate::panic_message(info.payload());
                let loc = info
                    .location()
                    .map(|l| format!("{}:{}:{}", l.file(), l.line(), l.column()))
                    .unwrap_or_else(|| "<unknown>".into());
                PANIC_SLOT.with(|s| {
                    *s.borrow_mut() = Some(format!("{msg}\n  at {loc}\nbacktrace:\n{bt}"));
                });
                return;
            }
            prev(info);
        }));
    });
}

// ---------------------------------------------------------------------------
// The driver

struct RunOutcome {
    record: Vec<explore::Decision>,
    steps: u64,
    failure: Option<RunFailure>,
}

fn run_one(cfg: &Checker, name: &str, body: Arc<dyn Fn() + Send + Sync>, chooser: Chooser) -> RunOutcome {
    let r = rt();
    let gen;
    {
        let mut g = r.g.lock().unwrap_or_else(|e| e.into_inner());
        assert!(g.run.is_none(), "zi-check: nested model runs");
        g.gen = g.gen.wrapping_add(1).max(1);
        gen = g.gen;
        let mut run = Run {
            gen,
            threads: Vec::new(),
            objects: Vec::new(),
            time_ns: 0,
            steps: 0,
            max_steps: cfg.max_steps,
            abort: false,
            failure: None,
            chooser,
            last_granted: None,
            preemptions_used: 0,
            preemption_bound: if cfg.mode == Mode::Dfs { cfg.preemptions } else { usize::MAX },
            capture_backtraces: std::env::var("ZI_CHECK_BACKTRACE").as_deref() != Ok("0"),
        };
        run.new_thread(format!("{name}::main"), VClock::default(), Status::Spawning);
        g.run = Some(run);
        CURRENT_GEN.store(gen, Ordering::Release);
    }
    let root = std::thread::Builder::new()
        .name(format!("zi-check-{name}"))
        .spawn(move || {
            TLS.with(|t| t.set(Some((gen, 0))));
            if matches!(step(Pend::Start), Resume::Aborted) {
                thread_finish(FinishKind::Abort);
                return;
            }
            let res = catch_unwind(AssertUnwindSafe(|| body()));
            match res {
                Ok(()) => thread_finish(FinishKind::Ok),
                Err(p) if p.is::<AbortToken>() => thread_finish(FinishKind::Abort),
                Err(p) => thread_finish(FinishKind::Panic(crate::panic_message(p.as_ref()))),
            }
        })
        .expect("spawn model root thread");
    scheduler_loop(r);
    // Teardown: wake stragglers until every model thread has finished.
    loop {
        let mut g = r.g.lock().unwrap_or_else(|e| e.into_inner());
        let run = g.run.as_mut().expect("active run");
        wake_all_parked(run);
        if run.threads.iter().all(|t| t.status == Status::Finished) {
            break;
        }
        let (ng, to) = r
            .sched
            .wait_timeout(g, Duration::from_secs(30))
            .unwrap_or_else(|e| e.into_inner());
        drop(ng);
        assert!(!to.timed_out(), "zi-check internal: teardown stalled (model thread stuck)");
    }
    let run = {
        let mut g = r.g.lock().unwrap_or_else(|e| e.into_inner());
        CURRENT_GEN.store(0, Ordering::Release);
        g.run.take().expect("active run")
    };
    let _ = root.join();
    RunOutcome { record: run.chooser.record, steps: run.steps, failure: run.failure }
}

fn replay(
    cfg: &Checker,
    name: &str,
    body: Arc<dyn Fn() + Send + Sync>,
    chooser: Chooser,
    seed: Option<u64>,
) -> Report {
    install_hook();
    let lock = DRIVE_LOCK.get_or_init(|| StdMutex::new(()));
    let _serial = lock.lock().unwrap_or_else(|e| e.into_inner());
    let out = run_one(cfg, name, body, chooser);
    Report {
        schedules: 1,
        distinct: 1,
        steps: out.steps,
        exhausted: false,
        failure: out.failure.map(|f| Failure {
            kind: f.kind,
            message: f.message,
            seed,
            trace: explore::encode_trace(&out.record),
        }),
    }
}

/// Programmatic `ZI_CHECK_TRACE` replay (see [`Checker::replay_trace`]).
pub(crate) fn replay_trace(
    cfg: &Checker,
    name: &str,
    trace: &str,
    body: Arc<dyn Fn() + Send + Sync>,
) -> Report {
    replay(cfg, name, body, Chooser::scripted(explore::decode_trace(trace)), None)
}

/// Programmatic `ZI_CHECK_SEED` replay (see [`Checker::replay_seed`]).
pub(crate) fn replay_seed(
    cfg: &Checker,
    name: &str,
    seed: u64,
    body: Arc<dyn Fn() + Send + Sync>,
) -> Report {
    replay(cfg, name, body, Chooser::random(seed), Some(seed))
}

/// Explore `body` under `cfg`, producing the public [`Report`]. Entry
/// point used by [`Checker::check`] in `zi_check` builds.
pub(crate) fn drive(cfg: &Checker, name: &str, body: Arc<dyn Fn() + Send + Sync>) -> Report {
    install_hook();
    let lock = DRIVE_LOCK.get_or_init(|| StdMutex::new(()));
    let _serial = lock.lock().unwrap_or_else(|e| e.into_inner());

    let mut distinct = std::collections::HashSet::new();
    let mut report =
        Report { schedules: 0, distinct: 0, steps: 0, exhausted: false, failure: None };

    let finish_failure = |out: &RunOutcome, seed: Option<u64>| {
        out.failure.as_ref().map(|f| Failure {
            kind: f.kind.clone(),
            message: f.message.clone(),
            seed,
            trace: explore::encode_trace(&out.record),
        })
    };

    // Replay short-circuits.
    if let Ok(trace) = std::env::var("ZI_CHECK_TRACE") {
        let out = run_one(cfg, name, body, Chooser::scripted(explore::decode_trace(&trace)));
        report.schedules = 1;
        report.distinct = 1;
        report.steps = out.steps;
        report.failure = finish_failure(&out, None);
        return report;
    }
    if let Ok(seed) = std::env::var("ZI_CHECK_SEED") {
        if let Ok(seed) = seed.parse::<u64>() {
            let out = run_one(cfg, name, body.clone(), Chooser::random(seed));
            report.schedules = 1;
            report.distinct = 1;
            report.steps = out.steps;
            report.failure = finish_failure(&out, Some(seed));
            return report;
        }
    }

    match cfg.mode {
        Mode::Random => {
            for i in 0..cfg.schedules {
                let seed = explore::iter_seed(cfg.seed, i as u64);
                let out = run_one(cfg, name, body.clone(), Chooser::random(seed));
                report.schedules += 1;
                report.steps += out.steps;
                let fp = explore::fingerprint_record(&out.record);
                if distinct.insert(fp) {
                    report.distinct += 1;
                }
                if out.failure.is_some() {
                    report.failure = finish_failure(&out, Some(seed));
                    break;
                }
            }
        }
        Mode::Dfs => {
            let mut script: Vec<u32> = Vec::new();
            loop {
                let out = run_one(cfg, name, body.clone(), Chooser::scripted(script.clone()));
                report.schedules += 1;
                report.steps += out.steps;
                report.distinct += 1; // DFS schedules are distinct by construction
                if out.failure.is_some() {
                    report.failure = finish_failure(&out, None);
                    break;
                }
                match explore::dfs_next(&out.record) {
                    Some(next) => script = next,
                    None => {
                        report.exhausted = true;
                        break;
                    }
                }
                if report.schedules >= cfg.schedules {
                    break;
                }
            }
        }
    }
    report
}
