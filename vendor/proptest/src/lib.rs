//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the `proptest!` macro, range and collection strategies,
//! `any`, `prop_oneof`, `prop_map`, `ProptestConfig::with_cases`, and the
//! `prop_assert*` macros. Cases are drawn from a deterministic
//! per-test-per-case RNG, so failures are reproducible run to run. There
//! is no shrinking: a failing case panics with the standard assert
//! message (inputs can be recovered by re-running under a debugger, or by
//! printing them in the test body).

pub mod test_runner {
    /// Execution configuration for a `proptest!` block.
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of random cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Real proptest defaults to 256; 64 keeps offline CI fast
            // while still sweeping a meaningful input volume.
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic xorshift64* RNG.
    #[derive(Debug, Clone)]
    pub struct Rng {
        state: u64,
    }

    impl Rng {
        /// RNG seeded from raw state.
        pub fn new(seed: u64) -> Self {
            Rng { state: seed | 1 }
        }

        /// RNG for case number `case` of the test named `name` —
        /// deterministic across runs and platforms.
        pub fn for_case(name: &str, case: u64) -> Self {
            // FNV-1a over the test name, mixed with the case index.
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.as_bytes() {
                h ^= *b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            Rng::new(h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }

        /// Uniform value in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }

        /// Uniform f64 in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

pub mod strategy {
    use super::test_runner::Rng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The value type generated.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut Rng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Box the strategy (for heterogeneous unions).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A boxed, type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut Rng) -> T {
            (**self).sample(rng)
        }
    }

    /// Strategy produced by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn sample(&self, rng: &mut Rng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut Rng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice among equally weighted strategies (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Union over `options`; must be non-empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut Rng) -> T {
            let idx = rng.below(self.options.len() as u64) as usize;
            self.options[idx].sample(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut Rng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut Rng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    let span = (hi as i128 - lo as i128) as u64;
                    let span = span.checked_add(1).unwrap_or(u64::MAX);
                    (lo as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut Rng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    self.start + (rng.unit_f64() as $t) * (self.end - self.start)
                }
            }
        )*};
    }
    float_range_strategy!(f32, f64);

    /// Full-domain strategy for primitives ([`super::arbitrary::any`]).
    #[derive(Debug, Default, Clone, Copy)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T> Any<T> {
        /// Construct (used by `any::<T>()`).
        pub fn new() -> Self {
            Any(std::marker::PhantomData)
        }
    }

    macro_rules! any_int {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut Rng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Any<bool> {
        type Value = bool;
        fn sample(&self, rng: &mut Rng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod arbitrary {
    use super::strategy::Any;

    /// Strategy generating arbitrary values of `T`'s full domain.
    pub fn any<T>() -> Any<T>
    where
        Any<T>: super::strategy::Strategy,
    {
        Any::new()
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::Rng;

    /// Element-count bounds for generated collections.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { min: r.start, max_exclusive: r.end }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max_exclusive: n + 1 }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec`: vectors of `element` values.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut Rng) -> Vec<S::Value> {
            let span = (self.size.max_exclusive - self.size.min) as u64;
            let len = self.size.min + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything a property test file needs.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Define property tests. Mirrors proptest's macro shape:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     #[test]
///     fn my_prop(x in 0u64..100, v in proptest::collection::vec(any::<u8>(), 0..8)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                for __case in 0..config.cases as u64 {
                    let mut __rng = $crate::test_runner::Rng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    $(
                        let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);
                    )+
                    $body
                }
            }
        )*
    };
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(Box::new($strat) as $crate::strategy::BoxedStrategy<_>),+
        ])
    };
}

/// Assert within a property test (no shrinking in this stand-in).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assert within a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assert within a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::test_runner::Rng::new(7);
        for _ in 0..1000 {
            let x = (3usize..17).sample(&mut rng);
            assert!((3..17).contains(&x));
            let f = (-2.0f32..2.0).sample(&mut rng);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn vec_lengths_respect_size_range() {
        let mut rng = crate::test_runner::Rng::new(9);
        let strat = crate::collection::vec(0u8..255, 2..6);
        for _ in 0..200 {
            let v = strat.sample(&mut rng);
            assert!((2..6).contains(&v.len()));
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let draw = |seed| {
            let mut rng = crate::test_runner::Rng::for_case("x", seed);
            (0u64..1_000_000).sample(&mut rng)
        };
        assert_eq!(draw(5), draw(5));
        assert_ne!(draw(5), draw(6));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself works end to end.
        #[test]
        fn macro_generates_cases(
            x in 1u64..100,
            v in crate::collection::vec(0i32..10, 1..4),
        ) {
            prop_assert!((1..100).contains(&x));
            prop_assert!(!v.is_empty() && v.len() < 4);
        }

        #[test]
        fn oneof_and_map_compose(step in prop_oneof![
            (0u64..10).prop_map(|v| v as i64),
            (10u64..20).prop_map(|v| -(v as i64)),
        ]) {
            prop_assert!((0i64..10).contains(&step) || (-19i64..=-10).contains(&step));
        }
    }
}
