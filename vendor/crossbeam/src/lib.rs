//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides the `crossbeam::channel` subset the workspace uses: cloneable
//! multi-producer multi-consumer channels, bounded and unbounded, with
//! disconnect semantics matching crossbeam (send fails once every receiver
//! is gone; recv fails once the buffer is empty and every sender is gone).

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex, PoisonError};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        /// Signalled when an item arrives or all senders disconnect.
        readable: Condvar,
        /// Signalled when space frees up or all receivers disconnect.
        writable: Condvar,
        capacity: Option<usize>,
    }

    impl<T> Shared<T> {
        fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
            self.state.lock().unwrap_or_else(PoisonError::into_inner)
        }
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    pub struct SendError<T>(pub T);

    // Manual impl so `T: Debug` is not required (matches crossbeam).
    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is drained
    /// and all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel currently empty.
        Empty,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    /// Sending half of a channel. Cloneable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half of a channel. Cloneable (MPMC).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.lock().senders += 1;
            Sender { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.lock().receivers += 1;
            Receiver { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.shared.lock();
            st.senders -= 1;
            if st.senders == 0 {
                self.shared.readable.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.shared.lock();
            st.receivers -= 1;
            if st.receivers == 0 {
                self.shared.writable.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        /// Send `value`, blocking while a bounded channel is full.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.shared.lock();
            loop {
                if st.receivers == 0 {
                    return Err(SendError(value));
                }
                match self.shared.capacity {
                    Some(cap) if st.queue.len() >= cap => {
                        st = self
                            .shared
                            .writable
                            .wait(st)
                            .unwrap_or_else(PoisonError::into_inner);
                    }
                    _ => break,
                }
            }
            st.queue.push_back(value);
            self.shared.readable.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Receive the next value, blocking until one arrives or every
        /// sender disconnects.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.shared.lock();
            loop {
                if let Some(v) = st.queue.pop_front() {
                    self.shared.writable.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self
                    .shared
                    .readable
                    .wait(st)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        /// Receive without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.shared.lock();
            match st.queue.pop_front() {
                Some(v) => {
                    self.shared.writable.notify_one();
                    Ok(v)
                }
                None if st.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }
    }

    fn make<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State { queue: VecDeque::new(), senders: 1, receivers: 1 }),
            readable: Condvar::new(),
            writable: Condvar::new(),
            capacity,
        });
        (Sender { shared: Arc::clone(&shared) }, Receiver { shared })
    }

    /// Channel with unlimited buffering.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        make(None)
    }

    /// Channel holding at most `cap` in-flight values; sends block when
    /// full. `cap == 0` is treated as capacity 1 (this stand-in has no
    /// rendezvous mode; the workspace never uses `bounded(0)`).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        make(Some(cap.max(1)))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;

    #[test]
    fn unbounded_fifo_round_trip() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        for i in 0..10 {
            assert_eq!(rx.recv().unwrap(), i);
        }
    }

    #[test]
    fn cloned_receivers_share_work() {
        let (tx, rx) = unbounded::<u32>();
        let rx2 = rx.clone();
        let h1 = std::thread::spawn(move || (0..).map_while(|_| rx.recv().ok()).sum::<u32>());
        let h2 = std::thread::spawn(move || (0..).map_while(|_| rx2.recv().ok()).sum::<u32>());
        for i in 1..=100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        assert_eq!(h1.join().unwrap() + h2.join().unwrap(), 5050);
    }

    #[test]
    fn recv_fails_after_all_senders_drop() {
        let (tx, rx) = unbounded::<u8>();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv().unwrap(), 1);
        assert!(rx.recv().is_err());
    }

    #[test]
    fn send_fails_after_all_receivers_drop() {
        let (tx, rx) = unbounded::<u8>();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn bounded_blocks_until_drained() {
        let (tx, rx) = bounded::<u8>(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let h = std::thread::spawn(move || tx.send(3)); // blocks until a recv
        assert_eq!(rx.recv().unwrap(), 1);
        h.join().unwrap().unwrap();
        assert_eq!(rx.recv().unwrap(), 2);
        assert_eq!(rx.recv().unwrap(), 3);
    }
}
