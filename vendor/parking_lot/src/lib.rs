//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the small API subset it uses, implemented on top of
//! `std::sync`. Semantics match parking_lot for everything the workspace
//! relies on: non-poisoning guards returned directly from `lock()` /
//! `read()` / `write()`, and a `Condvar` that waits on a `&mut MutexGuard`.

use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};

/// Mutual exclusion primitive (non-poisoning facade over `std::sync::Mutex`).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait` can move the inner guard out and back.
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Create a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the mutex, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard { inner: Some(self.0.lock().unwrap_or_else(PoisonError::into_inner)) }
    }

    /// Try to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(sync::TryLockError::Poisoned(p)) => {
                Some(MutexGuard { inner: Some(p.into_inner()) })
            }
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// Condition variable compatible with [`Mutex`].
#[derive(Debug, Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    /// Block until notified, releasing `guard` while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard present");
        let inner = self.0.wait(inner).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(inner);
    }

    /// Block until notified or `timeout` elapses. Returns true if it
    /// timed out.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> bool {
        let inner = guard.inner.take().expect("guard present");
        let (inner, res) =
            match self.0.wait_timeout(inner, timeout) {
                Ok((g, r)) => (g, r),
                Err(p) => {
                    let (g, r) = p.into_inner();
                    (g, r)
                }
            };
        guard.inner = Some(inner);
        res.timed_out()
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

/// Reader-writer lock (non-poisoning facade over `std::sync::RwLock`).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(sync::RwLockReadGuard<'a, T>);
/// Exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Create a lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(PoisonError::into_inner))
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn condvar_signals_across_threads() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            *done = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut done = m.lock();
        while !*done {
            cv.wait(&mut done);
        }
        drop(done);
        h.join().unwrap();
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        assert!(cv.wait_for(&mut g, Duration::from_millis(5)));
    }
}
