//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API subset the workspace's benches use, backed by a
//! plain wall-clock harness: each benchmark is warmed up, then timed over
//! adaptively chosen iteration batches, and a mean per-iteration time (and
//! derived throughput, if declared) is printed. No statistics machinery,
//! no HTML reports — numbers on stdout, enough to compare variants.

use std::fmt::{self, Display};
use std::time::{Duration, Instant};

/// Prevent the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Units for derived throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` style id.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{name}/{parameter}") }
    }

    /// Id carrying just a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    /// Mean wall-clock time per iteration, filled in by `iter`.
    mean: Duration,
    /// `--test` dry-run mode: execute the routine once, skip timing.
    test_mode: bool,
}

/// Target accumulated measurement time per benchmark.
const MEASURE_TARGET: Duration = Duration::from_millis(300);
/// Iterations used to estimate per-iteration cost before measuring.
const PILOT_ITERS: u32 = 3;

impl Bencher {
    /// Time `routine`, storing the mean per-iteration duration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            // Dry run (`cargo bench -- --test`): prove the benchmark
            // body executes without measuring it.
            black_box(routine());
            return;
        }
        // Pilot phase: estimate cost to size the measured batch.
        let pilot_start = Instant::now();
        for _ in 0..PILOT_ITERS {
            black_box(routine());
        }
        let per_iter = pilot_start.elapsed() / PILOT_ITERS;
        let iters = if per_iter.is_zero() {
            10_000
        } else {
            (MEASURE_TARGET.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u32
        };
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.mean = start.elapsed() / iters;
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    test_mode: bool,
    _criterion: &'a mut Criterion,
}

fn human_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

impl BenchmarkGroup<'_> {
    /// Number of samples (accepted for API compatibility; the harness
    /// sizes batches by time instead).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Declare per-iteration throughput for derived reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    fn report(&self, id: &str, mean: Duration) {
        if self.test_mode {
            println!("{}/{id}: ok (--test)", self.name);
            return;
        }
        let rate = match self.throughput {
            Some(Throughput::Bytes(b)) => {
                let gib = b as f64 / mean.as_secs_f64() / (1u64 << 30) as f64;
                format!("  ({gib:.2} GiB/s)")
            }
            Some(Throughput::Elements(e)) => {
                let me = e as f64 / mean.as_secs_f64() / 1e6;
                format!("  ({me:.2} Melem/s)")
            }
            None => String::new(),
        };
        println!("{}/{id}: {}{rate}", self.name, human_duration(mean));
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher { mean: Duration::ZERO, test_mode: self.test_mode };
        f(&mut b);
        self.report(&id.to_string(), b.mean);
        self
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher { mean: Duration::ZERO, test_mode: self.test_mode };
        f(&mut b, input);
        self.report(&id.to_string(), b.mean);
        self
    }

    /// End the group (printing is already done per-bench).
    pub fn finish(self) {}
}

/// Entry point handed to benchmark functions.
#[derive(Default)]
pub struct Criterion {
    test_mode: bool,
}

impl Criterion {
    /// Standard construction used by `criterion_main!`. Recognizes the
    /// `--test` CLI flag (CI smoke): each benchmark body runs exactly
    /// once, untimed.
    pub fn configure_from_args(mut self) -> Self {
        self.test_mode = std::env::args().any(|a| a == "--test");
        self
    }

    /// Force dry-run mode programmatically (equivalent to `--test`).
    pub fn with_test_mode(mut self, on: bool) -> Self {
        self.test_mode = on;
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== {name} ==");
        let test_mode = self.test_mode;
        BenchmarkGroup { name, throughput: None, test_mode, _criterion: self }
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let test_mode = self.test_mode;
        let mut group = BenchmarkGroup {
            name: "bench".to_string(),
            throughput: None,
            test_mode,
            _criterion: self,
        };
        group.bench_function(name, f);
        self
    }
}

/// Collect benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($bench_fn:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($bench_fn(&mut criterion);)+
        }
    };
}

/// Produce `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("smoke");
        group.sample_size(10).throughput(Throughput::Bytes(1024));
        group.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        group.bench_with_input(BenchmarkId::from_parameter(4), &4usize, |b, &n| {
            b.iter(|| black_box(vec![0u8; n]))
        });
        group.finish();
    }

    #[test]
    fn harness_runs_and_reports() {
        let mut c = Criterion::default();
        sample_bench(&mut c);
    }

    #[test]
    fn test_mode_runs_each_body_once() {
        use std::cell::Cell;
        let runs = Cell::new(0u32);
        let mut c = Criterion::default().with_test_mode(true);
        let mut group = c.benchmark_group("dry");
        group.bench_function("counted", |b| b.iter(|| runs.set(runs.get() + 1)));
        group.finish();
        assert_eq!(runs.get(), 1, "--test must execute the body exactly once");
    }
}
