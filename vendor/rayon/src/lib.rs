//! Offline stand-in for the `rayon` crate.
//!
//! The workspace uses three rayon entry points:
//!
//! * `par_chunks_mut(n).enumerate().for_each(..)` — the matmul hot path.
//!   Implemented here with real parallelism via `std::thread::scope`,
//!   round-robin distributing chunks over `available_parallelism` workers.
//! * `par_iter()` / `par_iter_mut()` — element-wise zips in the optimizer.
//!   Implemented as the corresponding sequential `std` iterators; the
//!   zip-chain shapes rayon supports compose identically on `std`
//!   iterators, so callers compile unchanged.

/// Extension methods mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{ParallelSlice, ParallelSliceMut};
}

/// Chunked mutable parallel iterator (pre-`enumerate`).
pub struct ParChunksMut<'a, T> {
    slice: &'a mut [T],
    chunk: usize,
}

/// Chunked mutable parallel iterator with indices attached.
pub struct EnumParChunksMut<'a, T> {
    slice: &'a mut [T],
    chunk: usize,
}

/// Below this many elements the scoped-thread dispatch costs more than it
/// saves; run sequentially.
const PAR_THRESHOLD: usize = 1 << 14;

impl<'a, T: Send> ParChunksMut<'a, T> {
    /// Attach chunk indices.
    pub fn enumerate(self) -> EnumParChunksMut<'a, T> {
        EnumParChunksMut { slice: self.slice, chunk: self.chunk }
    }

    /// Apply `f` to every chunk.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut [T]) + Sync,
    {
        self.enumerate().for_each(|(_, c)| f(c));
    }
}

impl<T: Send> EnumParChunksMut<'_, T> {
    /// Apply `f` to every `(index, chunk)` pair, in parallel when the
    /// slice is large enough to amortize thread spawn.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &mut [T])) + Sync,
    {
        let workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        let chunks: Vec<(usize, &mut [T])> = self.slice.chunks_mut(self.chunk).enumerate().collect();
        if workers <= 1 || chunks.len() <= 1 || self.chunk.saturating_mul(chunks.len()) < PAR_THRESHOLD
        {
            for item in chunks {
                f(item);
            }
            return;
        }
        let mut buckets: Vec<Vec<(usize, &mut [T])>> =
            (0..workers.min(chunks.len())).map(|_| Vec::new()).collect();
        let n_buckets = buckets.len();
        for (i, item) in chunks.into_iter().enumerate() {
            buckets[i % n_buckets].push(item);
        }
        let f = &f;
        std::thread::scope(|scope| {
            for bucket in buckets {
                scope.spawn(move || {
                    for item in bucket {
                        f(item);
                    }
                });
            }
        });
    }
}

/// Parallel extensions on mutable slices.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel analogue of `chunks_mut`.
    fn par_chunks_mut(&mut self, chunk: usize) -> ParChunksMut<'_, T>;
    /// Element-wise "parallel" iterator (sequential in this stand-in).
    fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T>;
}

/// Parallel extensions on shared slices.
pub trait ParallelSlice<T: Sync> {
    /// Element-wise "parallel" iterator (sequential in this stand-in).
    fn par_iter(&self) -> std::slice::Iter<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk: usize) -> ParChunksMut<'_, T> {
        assert!(chunk > 0, "chunk size must be positive");
        ParChunksMut { slice: self, chunk }
    }

    fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
        self.iter_mut()
    }
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> std::slice::Iter<'_, T> {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_chunks_mut_covers_every_chunk_once() {
        let mut v = vec![0u32; 100_000];
        v.par_chunks_mut(1000).enumerate().for_each(|(i, c)| {
            for x in c.iter_mut() {
                *x += i as u32 + 1;
            }
        });
        // Every element written exactly once with its chunk index + 1.
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, (i / 1000) as u32 + 1);
        }
    }

    #[test]
    fn small_inputs_run_sequentially_and_correctly() {
        let mut v = [1i64; 17];
        v.par_chunks_mut(4).for_each(|c| {
            for x in c.iter_mut() {
                *x *= 2;
            }
        });
        assert!(v.iter().all(|&x| x == 2));
    }

    #[test]
    fn zip_chains_compose() {
        let mut a = [1.0f32; 8];
        let mut m = [0.0f32; 8];
        let g = [2.0f32; 8];
        a.par_iter_mut().zip(m.par_iter_mut().zip(g.par_iter())).for_each(|(p, (mm, gg))| {
            *mm += gg;
            *p += *mm;
        });
        assert!(a.iter().all(|&x| x == 3.0));
        assert!(m.iter().all(|&x| x == 2.0));
    }
}
