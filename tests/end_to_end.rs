//! End-to-end integration: real file-backed NVMe, multi-rank training,
//! fp16 storage, checkpointing and prefetch all engaged at once.

use zi_sync::Arc;

use zero_infinity_suite::model::{GptConfig, GptModel, RunOptions};
use zero_infinity_suite::optim::AdamConfig;
use zero_infinity_suite::zero::trainer::synthetic_batch;
use zero_infinity_suite::zero::{NodeResources, Strategy, ZeroEngine};
use zi_memory::NodeMemorySpec;
use zi_types::Device;

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("zi_e2e_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

/// The kitchen-sink run: 4 ranks, NVMe on a real file, fp16 parameter
/// storage, activation checkpointing, prefetching — loss must fall and
/// no pool may leak.
#[test]
fn full_stack_training_on_file_backed_nvme() {
    let cfg = GptConfig { vocab: 32, hidden: 16, layers: 3, heads: 4, seq: 8, seed: 5 };
    let world = 4;
    let spec = NodeMemorySpec::test_spec(world, 1 << 24, 1 << 26, 1 << 27);
    let dir = temp_dir("full");
    let node = Arc::new(
        NodeResources::with_file_nvme(&spec, world, &dir.join("nvme.dev")).expect("nvme file"),
    );

    let mut handles = Vec::new();
    for rank in 0..world {
        let node = Arc::clone(&node);
        handles.push(zi_sync::thread::spawn(move || {
            let model = GptModel::new(cfg);
            let mut engine = ZeroEngine::new(
                model.registry(),
                Strategy::infinity_nvme(),
                node.offload_manager(),
                node.group.communicator(rank),
                AdamConfig { lr: 0.01, ..Default::default() },
            )
            .expect("engine");
            let opts =
                RunOptions { batch: 2, activation_checkpointing: true, prefetch_window: 2 };
            let rows = 2 * cfg.seq;
            let mut losses = Vec::new();
            for step in 0..10usize {
                let (tokens, targets) = synthetic_batch(&cfg, 2 * world, step);
                let lo = rank * rows;
                let loss = model
                    .train_step(
                        &mut engine,
                        &tokens[lo..lo + rows],
                        &targets[lo..lo + rows],
                        &opts,
                    )
                    .expect("train step");
                assert!(engine.step().expect("optimizer step"), "no overflow expected");
                losses.push(node.group.communicator(rank).sum_scalar(loss).unwrap() / world as f32);
            }
            let stats = engine.stats();
            engine.dispose().expect("dispose");
            (losses, stats)
        }));
    }
    let mut rank0 = None;
    for (rank, h) in handles.into_iter().enumerate() {
        let out = h.join().expect("rank thread");
        if rank == 0 {
            rank0 = Some(out);
        }
    }
    let (losses, stats) = rank0.unwrap();
    assert!(
        losses.last().unwrap() < &losses[0],
        "loss should fall: {losses:?}"
    );
    assert!(stats.allgathers > 0);
    assert!(stats.prefetch.hits > 0, "prefetching should engage: {:?}", stats.prefetch);
    assert_eq!(stats.steps, 10);

    // Nothing leaked on any tier after dispose.
    for rank in 0..world {
        assert_eq!(node.hierarchy.stats(Device::gpu(rank)).in_use, 0, "gpu {rank} leak");
    }
    assert_eq!(node.hierarchy.stats(Device::cpu()).in_use, 0, "cpu leak");
    assert_eq!(node.hierarchy.stats(Device::nvme()).in_use, 0, "nvme leak");
    // The NVMe device really moved bytes.
    let io = node.nvme.stats();
    assert!(io.bytes_written > 0 && io.bytes_read > 0, "NVMe idle: {io:?}");
    assert_eq!(io.errors, 0);

    drop(node);
    std::fs::remove_dir_all(&dir).ok();
}

/// The GPU pools must stay small under NVMe offload: peak GPU usage
/// bounded by working memory, far below total model-state bytes.
#[test]
fn gpu_working_memory_stays_bounded() {
    let cfg = GptConfig { vocab: 32, hidden: 32, layers: 4, heads: 4, seq: 8, seed: 6 };
    let world = 2;
    let spec = NodeMemorySpec::test_spec(world, 1 << 22, 1 << 26, 1 << 27);
    let node = Arc::new(NodeResources::in_memory(&spec, world));
    let model_states_bytes = {
        let m = GptModel::new(cfg);
        m.registry().total_numel() * 20
    };

    let mut handles = Vec::new();
    for rank in 0..world {
        let node = Arc::clone(&node);
        handles.push(zi_sync::thread::spawn(move || {
            let model = GptModel::new(cfg);
            let mut engine = ZeroEngine::new(
                model.registry(),
                Strategy::infinity_nvme(),
                node.offload_manager(),
                node.group.communicator(rank),
                AdamConfig::default(),
            )
            .expect("engine");
            let opts = RunOptions { batch: 1, ..Default::default() };
            let rows = cfg.seq;
            let (tokens, targets) = synthetic_batch(&cfg, world, 0);
            let lo = rank * rows;
            model
                .train_step(&mut engine, &tokens[lo..lo + rows], &targets[lo..lo + rows], &opts)
                .expect("train step");
            engine.step().expect("step");
            engine.dispose().expect("dispose");
        }));
    }
    for h in handles {
        h.join().expect("rank");
    }
    for rank in 0..world {
        let peak = node.hierarchy.stats(Device::gpu(rank)).peak_in_use as usize;
        assert!(
            peak * 4 < model_states_bytes,
            "GPU peak {peak} B not small vs {model_states_bytes} B of model states"
        );
    }
}

/// Injected NVMe read failures that outlast the retry budget surface as
/// typed errors, not hangs or silent corruption.
#[test]
fn nvme_failures_propagate_cleanly() {
    use zi_nvme::{FaultPlan, FaultyBackend, MemBackend, RetryPolicy, StorageBackend};

    let cfg = GptConfig::tiny();
    let spec = NodeMemorySpec::test_spec(1, 1 << 24, 1 << 26, 1 << 26);
    let plan = FaultPlan::new();
    let backend = Arc::new(FaultyBackend::new(MemBackend::new(), plan.clone()));
    let policy = RetryPolicy {
        max_attempts: 3,
        base_backoff: std::time::Duration::from_micros(100),
        max_backoff: std::time::Duration::from_millis(1),
        ..RetryPolicy::default()
    };
    let node = NodeResources::with_backend_policy(
        &spec,
        1,
        backend as Arc<dyn StorageBackend>,
        policy,
    );
    let model = GptModel::new(cfg);

    // Engine construction writes initial shards to NVMe; inject failure
    // after construction, during gradient/optimizer traffic.
    let mut engine = ZeroEngine::new(
        model.registry(),
        Strategy::infinity_nvme(),
        node.offload_manager(),
        node.group.communicator(0),
        AdamConfig::default(),
    )
    .expect("engine");

    // More consecutive failures than the retry budget can absorb.
    plan.fail_next_reads(u32::MAX);
    let opts = RunOptions::default();
    let (tokens, targets) = synthetic_batch(&cfg, 1, 0);
    let result = model.train_step(&mut engine, &tokens, &targets, &opts);
    assert!(result.is_err(), "read failures must surface");
    assert!(plan.injected().read_faults > 0, "faults really were injected");
}
