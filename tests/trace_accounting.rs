//! Trace-accounting invariants: the zi-trace event stream and counters
//! must agree with each other, with the NVMe engine's own `IoStats`,
//! and with the wall-clock structure of a training run — otherwise the
//! overlap-efficiency report is measuring fiction.

use zi_sync::Arc;

use zero_infinity::{
    train_gpt_env, NodeResources, Strategy, TrainEnv, TrainSpec, ZeroEngine,
};
use zi_comm::CommConfig;
use zi_memory::NodeMemorySpec;
use zi_model::{GptConfig, ParamRegistry, ParamStore};
use zi_nvme::{MemBackend, RetryPolicy, StorageBackend};
use zi_optim::AdamConfig;
use zi_tensor::Tensor;
use zi_trace::report::OverlapReport;
use zi_trace::{Category, CounterSnapshot, Event, Tracer};

const STEPS: usize = 3;
const WORLD: usize = 2;

/// Run a traced 2-rank NVMe-offloaded training session and hand back
/// its complete event stream and counters.
fn traced_train() -> (Vec<Event>, CounterSnapshot) {
    let tracer = Tracer::new();
    let spec = TrainSpec {
        steps: STEPS,
        ..TrainSpec::test_default(GptConfig::tiny(), Strategy::infinity_nvme(), WORLD)
    };
    let env = TrainEnv { tracer: Some(tracer.clone()), ..TrainEnv::new(Arc::new(MemBackend::new())) };
    let out = train_gpt_env(&spec, env).expect("traced train run");
    assert_eq!(out.losses.len(), STEPS);
    (tracer.take_events(), tracer.snapshot())
}

fn span_bytes(events: &[Event], pred: impl Fn(&Event) -> bool) -> u64 {
    events.iter().filter(|e| pred(e)).map(|e| e.bytes).sum()
}

#[test]
fn counters_agree_with_the_event_stream() {
    let (events, snap) = traced_train();
    assert_eq!(snap.events_dropped, 0, "default rings must hold a tiny run without drops");

    // Every hop category (and the compute that hides them) shows up.
    for cat in [
        Category::NcTransfer,
        Category::CgTransfer,
        Category::Allgather,
        Category::ReduceScatter,
        Category::Compute,
        Category::OptimStep,
    ] {
        assert!(
            events.iter().any(|e| e.cat == cat),
            "no {} events in a full NVMe-offloaded run",
            cat.label()
        );
    }

    // Counter bytes and span bytes are recorded at the same call sites;
    // with zero drops they must agree exactly, hop by hop.
    let nc_read = span_bytes(&events, |e| e.cat == Category::NcTransfer && e.name == "nc.read");
    let nc_write = span_bytes(&events, |e| {
        e.cat == Category::NcTransfer && (e.name == "nc.write" || e.name == "nc.write_detached")
    });
    let cg = span_bytes(&events, |e| e.cat == Category::CgTransfer);
    let gg = span_bytes(&events, |e| e.cat == Category::Allgather);
    let rs = span_bytes(&events, |e| e.cat == Category::ReduceScatter);
    assert_eq!(snap.nc_read_bytes, nc_read, "nc read counter disagrees with nc.read spans");
    assert_eq!(snap.nc_write_bytes, nc_write, "nc write counter disagrees with nc.write spans");
    assert_eq!(snap.cg_bytes, cg, "cg counter disagrees with cg.upload spans");
    assert_eq!(snap.gg_bytes, gg, "gg counter disagrees with allgather spans");
    assert_eq!(snap.rs_bytes, rs, "rs counter disagrees with reduce-scatter spans");
    assert!(nc_read > 0 && cg > 0 && gg > 0 && rs > 0, "a real run moves bytes on every hop");

    // Prefetch accounting is self-consistent: late demand fetches are a
    // subset of hits, and every hit was a previously issued load.
    assert!(snap.prefetch_late <= snap.prefetch_hits);
    assert!(snap.prefetch_hits <= snap.prefetch_issued);
}

#[test]
fn trace_counters_match_nvme_io_stats() {
    const NUMEL: usize = 1 << 14;
    let spec = NodeMemorySpec::test_spec(1, 1 << 24, 1 << 26, 1 << 26);
    let tracer = Tracer::new();
    let node = NodeResources::with_backend_policy_comm_tracer(
        &spec,
        1,
        Arc::new(MemBackend::new()) as Arc<dyn StorageBackend>,
        RetryPolicy::default(),
        CommConfig::default(),
        tracer.clone(),
    );
    let mut reg = ParamRegistry::new();
    let id = reg.register("p", &[NUMEL], 3, 0.1, 0.0);
    let mut engine = ZeroEngine::new(
        &reg,
        Strategy::infinity_nvme().with_optimizer_chunk(1 << 12),
        node.offload_manager(),
        node.group.communicator(0),
        AdamConfig::default(),
    )
    .expect("engine");
    let grad = Tensor::randn_seeded(&[NUMEL], 5, 0.1);
    for _ in 0..3 {
        engine.add_grad(id, &grad).expect("grad");
        engine.step().expect("step");
    }
    drop(engine);
    // Quiesce detached write-behind traffic before comparing books.
    node.offload_manager().flush().expect("flush");

    let io = node.nvme.stats();
    let snap = tracer.snapshot();
    assert!(io.bytes_read > 0 && io.bytes_written > 0, "the run must exercise the device");
    assert_eq!(snap.nc_read_bytes, io.bytes_read, "tracer nc reads != engine IoStats reads");
    assert_eq!(snap.nc_write_bytes, io.bytes_written, "tracer nc writes != engine IoStats writes");
    assert_eq!(snap.io_in_flight, 0, "in-flight gauge must return to zero after a flush");
    assert!(snap.io_in_flight_peak > 0, "gauge high-water mark never moved");
}

#[test]
fn per_step_span_wallclock_fits_the_step_windows() {
    let (events, _) = traced_train();
    let report = OverlapReport::from_events(&events);
    assert_eq!(report.steps.len(), STEPS, "one report entry per optimizer step");
    assert!(!report.is_empty());

    let mut prev_start = 0u64;
    for (i, s) in report.steps.iter().enumerate() {
        assert_eq!(s.step, i as u64, "step ids must be dense and ordered");
        assert!(s.end_ns > s.start_ns, "step {i} window is empty");
        assert!(s.start_ns >= prev_start, "step windows must not run backwards");
        prev_start = s.start_ns;

        let window = s.end_ns - s.start_ns;
        // Union wall-clock of any span family clipped to the window can
        // never exceed the window itself — the tolerance side of "span
        // sums match the step duration".
        assert!(s.compute_ns > 0, "step {i} recorded no compute");
        assert!(s.compute_ns <= window, "step {i} compute union exceeds its window");
        for h in &s.hops {
            assert!(h.hidden_ns <= h.busy_ns, "step {i} hop {} hides more than it is busy", h.hop);
            assert!(h.busy_ns <= window, "step {i} hop {} busier than the whole step", h.hop);
        }
        // Each step gathers parameters and uploads them to the GPU.
        assert!(s.hops[1].bytes > 0, "step {i} moved no cg bytes");
        assert!(s.hops[2].bytes > 0, "step {i} moved no gg bytes");
    }

    // Whole-run totals dominate any single step's clipped view.
    for (hop_idx, total) in report.totals.iter().enumerate() {
        assert!(total.hidden_ns <= total.busy_ns);
        for s in &report.steps {
            assert!(s.hops[hop_idx].bytes <= total.bytes);
        }
        let eff = total.efficiency();
        assert!((0.0..=1.0).contains(&eff), "efficiency must be a fraction, got {eff}");
    }
}
