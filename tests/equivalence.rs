//! Cross-crate equivalence matrix: strategies × checkpointing × chunking
//! must all produce the same training trajectory as the dense baseline.

use zero_infinity_suite::model::GptConfig;
use zero_infinity_suite::optim::AdamConfig;
use zero_infinity_suite::zero::trainer::train_dense_baseline;
use zero_infinity_suite::zero::{train_gpt, Strategy, TrainSpec};
use zi_memory::NodeMemorySpec;

fn cfg() -> GptConfig {
    GptConfig { vocab: 24, hidden: 16, layers: 3, heads: 4, seq: 6, seed: 31 }
}

fn spec(strategy: Strategy, world: usize, micro: usize) -> TrainSpec {
    TrainSpec {
        model: cfg(),
        strategy,
        world,
        micro_batch: micro,
        steps: 4,
        adam: AdamConfig { lr: 0.02, ..Default::default() },
        grad_accumulation: 1,
        schedule: None,
        node: NodeMemorySpec::test_spec(world, 1 << 24, 1 << 26, 1 << 26),
        activation_checkpointing: false,
        offload_activations: false,
        prefetch_window: 2,
        checkpoint_every: 0,
        max_recoveries: 0,
        collective_deadline: std::time::Duration::from_secs(30),
        adaptive: false,
    }
}

#[test]
fn four_rank_nvme_matches_baseline_on_larger_model() {
    let adam = AdamConfig { lr: 0.02, ..Default::default() };
    let (base, base_params) = train_dense_baseline(&cfg(), 4, 4, adam, false).unwrap();
    let out =
        train_gpt(&spec(Strategy::infinity_nvme().with_f32_params(), 4, 1)).unwrap();
    for (a, b) in out.losses.iter().zip(&base) {
        assert!((a - b).abs() < 1e-5, "{a} vs {b}");
    }
    let max_diff = out
        .final_params
        .iter()
        .zip(&base_params)
        .flat_map(|(x, y)| x.data().iter().zip(y.data()).map(|(p, q)| (p - q).abs()))
        .fold(0.0f32, f32::max);
    // f32 summation order differs between 4-way reduce-scatter and the
    // single-process batch, so allow small reduction-order noise.
    assert!(max_diff < 1e-3, "param drift {max_diff}");
}

#[test]
fn checkpointing_commutes_with_every_offload_tier() {
    for strategy in [Strategy::zero_3(), Strategy::infinity_cpu(), Strategy::infinity_nvme()] {
        let s = strategy.with_f32_params();
        let plain = train_gpt(&spec(s, 2, 2)).unwrap();
        let mut ck = spec(s, 2, 2);
        ck.activation_checkpointing = true;
        let ckpt = train_gpt(&ck).unwrap();
        assert_eq!(plain.losses, ckpt.losses, "{}", strategy.name);
    }
}

#[test]
fn optimizer_chunk_size_is_invisible() {
    let reference = train_gpt(&spec(
        Strategy::infinity_nvme().with_f32_params().with_optimizer_chunk(usize::MAX),
        2,
        2,
    ))
    .unwrap();
    for chunk in [7usize, 64, 1000] {
        let out = train_gpt(&spec(
            Strategy::infinity_nvme().with_f32_params().with_optimizer_chunk(chunk),
            2,
            2,
        ))
        .unwrap();
        assert_eq!(out.losses, reference.losses, "chunk {chunk} changed training");
    }
}

#[test]
fn pipelined_step_matches_sequential_across_strategies() {
    // The overlap-centric optimizer step (depth ≥ 2: reads of chunk k+1
    // in flight while chunk k updates and chunk k−1 writes back) must be
    // bit-identical to the fully sequential depth-1 loop on every
    // Table 2 strategy — pipelining is a scheduling change, never a
    // numeric one.
    for strategy in Strategy::table2() {
        let s = strategy.with_f32_params().with_optimizer_chunk(64);
        let reference = train_gpt(&spec(s.with_step_pipeline_depth(1), 2, 2)).unwrap();
        for depth in [2usize, 4] {
            let out = train_gpt(&spec(s.with_step_pipeline_depth(depth), 2, 2)).unwrap();
            assert_eq!(
                out.losses, reference.losses,
                "{}: depth {depth} changed the loss trajectory",
                strategy.name
            );
            for (i, (a, b)) in
                out.final_params.iter().zip(&reference.final_params).enumerate()
            {
                assert_eq!(
                    a.data(),
                    b.data(),
                    "{}: depth {depth} changed param {i}",
                    strategy.name
                );
            }
        }
    }
}

#[test]
fn micro_batch_split_is_invisible() {
    // Same global batch of 4 as 4x1, 2x2 and 1x4 — identical trajectories.
    let reference = train_gpt(&spec(Strategy::zero_3().with_f32_params(), 1, 4)).unwrap();
    for (world, micro) in [(2usize, 2usize), (4, 1)] {
        let out =
            train_gpt(&spec(Strategy::zero_3().with_f32_params(), world, micro)).unwrap();
        for (a, b) in out.losses.iter().zip(&reference.losses) {
            assert!((a - b).abs() < 1e-5, "world {world}: {a} vs {b}");
        }
    }
}

#[test]
fn fp16_quantization_error_is_small_but_nonzero() {
    let adam = AdamConfig { lr: 0.02, ..Default::default() };
    let (base, _) = train_dense_baseline(&cfg(), 4, 4, adam, false).unwrap();
    let out = train_gpt(&spec(Strategy::infinity_nvme(), 2, 2)).unwrap();
    // fp16 parameter storage rounds; losses track within ~1% but are not
    // bitwise identical.
    for (a, b) in out.losses.iter().zip(&base) {
        assert!((a - b).abs() < 0.05 * b, "{a} vs {b}");
    }
    assert_ne!(out.losses, base, "fp16 should not be bitwise identical");
}

#[test]
fn odd_world_sizes_and_padding() {
    // World 3 forces padding on almost every parameter (shapes of this
    // model are mostly not divisible by 3).
    let adam = AdamConfig { lr: 0.02, ..Default::default() };
    let (base, _) = train_dense_baseline(&cfg(), 3, 4, adam, false).unwrap();
    let out =
        train_gpt(&spec(Strategy::infinity_cpu().with_f32_params(), 3, 1)).unwrap();
    for (a, b) in out.losses.iter().zip(&base) {
        assert!((a - b).abs() < 1e-5, "{a} vs {b}");
    }
}
