//! Chaos suite: training under injected storage faults.
//!
//! The resilience contract (DESIGN.md, "Failure model & recovery") in
//! executable form:
//!
//! * **Soak** — a full multi-rank training run over a device that
//!   randomly fails reads and writes, tears writes and injects latency
//!   spikes must finish with a loss trajectory *bit-for-bit equal* to
//!   the fault-free run: every transient fault is absorbed by the retry
//!   layer, none escape to training code.
//! * **Retry policy properties** — backoff schedules are deterministic,
//!   monotone nondecreasing and bounded by `max_backoff`, for arbitrary
//!   policies.
//! * **Elasticity** — a rank killed mid-collective surfaces as a typed
//!   [`zi_types::Error::RankFailed`] on every survivor within the
//!   collective deadline (never a hang), and a session with recovery
//!   budget shrinks the world by one, re-partitions optimizer state from
//!   the last durable checkpoint and trains to completion with the same
//!   trajectory as a fresh session resumed from that checkpoint.
//! * **World grow & composed chaos** — a replacement rank joining after
//!   a kill grows the world back without spending recovery budget, and
//!   a [`zi_chaos::ChaosPlan`] composes device deaths, rank kills,
//!   joins, delays and corruption on one deterministic, seed-replayable
//!   timeline whose event log must accept the session's outcome.

use zi_sync::Arc;
use std::time::Duration;

use proptest::prelude::*;
use zero_infinity::{train_gpt, train_gpt_with_policy, Strategy, TrainSpec};
use zi_model::GptConfig;
use zi_nvme::{FaultPlan, FaultProfile, FaultyBackend, MemBackend, RetryPolicy};

fn chaos_policy() -> RetryPolicy {
    RetryPolicy {
        // Generous attempt budget: with per-op fault probability p, the
        // chance any single request exhausts 8 attempts is p^8 — at
        // p = 0.05 that is ~4e-11, so a soak of a few thousand ops gives
        // up with probability ~1e-7 (a give-up under multi-rank training
        // would strand sibling ranks in a collective).
        max_attempts: 8,
        base_backoff: Duration::from_micros(100),
        max_backoff: Duration::from_millis(2),
        deadline: Duration::from_secs(30),
        jitter_seed: 0x000c_4a05,
    }
}

fn soak_spec() -> TrainSpec {
    let cfg = GptConfig { vocab: 16, hidden: 8, layers: 2, heads: 2, seq: 4, seed: 13 };
    let mut spec = TrainSpec::test_default(cfg, Strategy::infinity_nvme().with_f32_params(), 2);
    spec.steps = 5;
    spec
}

/// Training over a lossy-but-alive device is numerically invisible:
/// same losses as the fault-free run, every fault absorbed by a retry,
/// zero requests given up, no degradation.
#[test]
fn chaos_soak_transient_faults_are_invisible() {
    let spec = soak_spec();
    let reference = train_gpt(&spec).expect("fault-free run");

    // Transient-only profile: torn writes heal on rewrite and spikes
    // only delay, so nothing here can corrupt state or kill the device.
    // (Bit-flips are exercised separately — they are *silent* faults,
    // repaired by the checksum layer, not the retry layer.)
    let profile = FaultProfile {
        read_fault: 0.05,
        write_fault: 0.05,
        torn_write: 0.03,
        latency_spike: 0.02,
        spike: Duration::from_micros(200),
        ..FaultProfile::quiet(0xdead_beef)
    };
    let plan = FaultPlan::probabilistic(profile);
    let backend = Arc::new(FaultyBackend::new(MemBackend::new(), plan.clone()));
    let out = train_gpt_with_policy(&spec, backend, chaos_policy()).expect("chaos run");

    let injected = plan.injected();
    assert!(
        injected.total_faults() > 0,
        "soak must actually inject faults, got {injected:?}"
    );
    assert!(out.health.io.retries > 0, "faults must be absorbed by retries");
    assert_eq!(out.health.io.gave_up, 0, "no request may exhaust its retry budget");
    assert!(!out.degraded, "transient faults must not degrade the device");
    assert_eq!(out.recoveries, 0, "transient faults must not force a restart");
    assert_eq!(
        out.losses, reference.losses,
        "chaos trajectory must equal the fault-free trajectory bit for bit"
    );
}

/// Silent read corruption (bit-flips in transit) is repaired end to end
/// by the checksum layer without changing training numerics.
#[test]
fn chaos_soak_bitflips_are_repaired_by_checksums() {
    let spec = soak_spec();
    let reference = train_gpt(&spec).expect("fault-free run");

    let plan = FaultPlan::new();
    // Corrupt a handful of early reads; the device data stays clean, so
    // every flip is repairable by a verified re-read.
    plan.bitflip_next_reads(5);
    let backend = Arc::new(FaultyBackend::new(MemBackend::new(), plan.clone()));
    let out = train_gpt_with_policy(&spec, backend, chaos_policy()).expect("bitflip run");

    assert_eq!(plan.injected().bitflips, 5, "all scripted flips must fire");
    assert!(
        out.health.corruptions_recovered > 0,
        "checksum layer must detect and repair flips: {:?}",
        out.health
    );
    assert_eq!(out.health.corruptions_unrecovered, 0);
    assert_eq!(out.losses, reference.losses, "repaired flips must be invisible");
}

/// The pipelined optimizer step (deep read pipeline + async
/// write-behind) keeps the full resilience contract: transient faults
/// and torn writes injected mid-step are absorbed by the retry layer,
/// the trajectory equals the fault-free run bit for bit, and nothing
/// gives up or degrades.
#[test]
fn chaos_pipelined_step_survives_transient_faults() {
    // Deep pipeline + tiny chunks: many concurrent in-flight requests
    // per step, so injected faults land on pipelined reads and
    // write-behind writes, not just on parameter traffic.
    let mut spec = soak_spec();
    spec.strategy = spec
        .strategy
        .with_optimizer_chunk(64)
        .with_step_pipeline_depth(3);
    let reference = train_gpt(&spec).expect("fault-free run");

    let profile = FaultProfile {
        read_fault: 0.05,
        write_fault: 0.05,
        torn_write: 0.03,
        latency_spike: 0.02,
        spike: Duration::from_micros(200),
        ..FaultProfile::quiet(0x00ff_10ad)
    };
    let plan = FaultPlan::probabilistic(profile);
    let backend = Arc::new(FaultyBackend::new(MemBackend::new(), plan.clone()));
    let out = train_gpt_with_policy(&spec, backend, chaos_policy()).expect("chaos run");

    assert!(plan.injected().total_faults() > 0, "soak must inject faults");
    assert!(out.health.io.retries > 0, "faults must be absorbed by retries");
    assert_eq!(out.health.io.gave_up, 0, "no request may exhaust its retry budget");
    assert!(!out.degraded, "transient faults must not degrade the device");
    assert_eq!(
        out.losses, reference.losses,
        "pipelined chaos trajectory must equal the fault-free trajectory bit for bit"
    );
}

mod adaptive {
    use super::*;
    use zi_adapt::{Decision, ResetReason};

    /// Dead-device retries resolve instantly (the engine fail-fast latch
    /// sets after the first give-up); keep the budget small so the
    /// give-up itself is quick too.
    fn fast_policy() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 2,
            base_backoff: Duration::from_micros(10),
            max_backoff: Duration::from_micros(50),
            deadline: Duration::from_secs(5),
            jitter_seed: 7,
        }
    }

    /// Deliberately bad starting knobs (sequential step, no prefetch,
    /// single write-behind slot) so the controller has somewhere to go.
    fn adaptive_spec() -> TrainSpec {
        let cfg = GptConfig { vocab: 16, hidden: 8, layers: 2, heads: 2, seq: 4, seed: 61 };
        let strategy = Strategy::infinity_nvme()
            .with_f32_params()
            .with_step_pipeline_depth(1)
            .with_write_behind(1);
        let mut spec = TrainSpec::test_default(cfg, strategy, 1);
        spec.steps = 12;
        spec.prefetch_window = 0;
        spec.checkpoint_every = 2;
        spec.max_recoveries = 2;
        spec.adaptive = true;
        spec
    }

    /// NVMe→CPU failover without a restart: the device is dead before
    /// the first store, so every shard gracefully lands on CPU and the
    /// controller simply tunes the degraded regime it finds itself in.
    /// The restart budget stays untouched and the knob moves remain
    /// numerically invisible.
    #[test]
    fn adaptive_run_retunes_through_graceful_failover() {
        let spec = adaptive_spec();
        let reference = train_gpt(&TrainSpec { adaptive: false, ..spec }).unwrap();

        let plan = FaultPlan::new();
        plan.kill();
        let backend = Arc::new(FaultyBackend::new(MemBackend::new(), plan));
        let out = train_gpt_with_policy(&spec, backend, fast_policy()).unwrap();

        assert!(out.degraded, "run must report the failover");
        assert!(out.health.failovers > 0, "stores must have failed over to CPU");
        assert_eq!(out.recoveries, 0, "graceful failover must not spend the restart budget");
        assert_eq!(out.losses, reference.losses, "retuning must not change numerics");

        let tuned = out.tuned.expect("adaptive run reports final knobs");
        assert!(tuned.step_pipeline_depth >= 1);
        assert!(
            out.decisions
                .iter()
                .any(|e| matches!(e.decision, Decision::Probe { .. })),
            "the controller must actually search the degraded regime: {:?}",
            out.decisions
        );
    }

    /// NVMe death mid-run: one checkpoint restart (well inside the
    /// budget) brings the session back on a CPU-degraded node, the
    /// controller logs the regime reset and rebuilds its search from a
    /// fresh baseline, and the recovered trajectory is bit-for-bit the
    /// fault-free one.
    #[test]
    fn adaptive_controller_reconverges_after_midrun_failover() {
        let spec = adaptive_spec();
        let reference = train_gpt(&TrainSpec { adaptive: false, ..spec }).unwrap();

        // Calibrate the kill point on a fault-free instrumented device.
        // Adaptive op counts drift a little run to run (prefetch issue
        // depends on measured timings), so kill early — past the first
        // stores, with most of the run still ahead.
        let quiet = FaultPlan::new();
        let backend = Arc::new(FaultyBackend::new(MemBackend::new(), quiet.clone()));
        train_gpt_with_policy(&spec, backend, fast_policy()).unwrap();
        let total_ops = quiet.ops_seen();
        assert!(total_ops > 0);

        let plan = FaultPlan::new();
        plan.kill_after_ops(total_ops * 3 / 10);
        let backend = Arc::new(FaultyBackend::new(MemBackend::new(), plan.clone()));
        let out = train_gpt_with_policy(&spec, backend, fast_policy()).unwrap();

        assert!(plan.injected().dead_rejections > 0, "the device really died");
        assert!(out.recoveries >= 1, "mid-run death must force a restart");
        assert!(
            out.recoveries <= spec.max_recoveries,
            "the restart budget must hold"
        );
        assert!(out.degraded, "the replacement run must distrust the device");
        assert_eq!(out.losses, reference.losses, "recovery + retuning must be invisible");

        // The decision log spans both attempts: the reset marks the
        // regime change, and a fresh baseline after it proves the
        // search actually restarted instead of trusting stale measures.
        let reset = out
            .decisions
            .iter()
            .position(|e| {
                matches!(
                    e.decision,
                    Decision::RegimeReset { reason: ResetReason::CheckpointRestart }
                )
            })
            .expect("the restart must be logged as a regime reset");
        assert!(
            out.decisions[reset + 1..]
                .iter()
                .any(|e| matches!(e.decision, Decision::Baseline { .. })),
            "the controller must re-measure a baseline after the reset: {:?}",
            out.decisions
        );
        assert!(out.tuned.is_some(), "the session still reports final knobs");
    }
}

mod elasticity {
    use super::*;
    use zi_sync::time::Instant;
    use zero_infinity::{
        decode_checkpoint_payload, encode_checkpoint_payload, reshard_checkpoint_blobs,
        train_gpt_env, TrainEnv,
    };
    use zi_comm::CommFaultPlan;
    use zi_nvme::CheckpointStore;

    fn elastic_spec(world: usize) -> TrainSpec {
        let cfg = GptConfig { vocab: 16, hidden: 8, layers: 2, heads: 2, seq: 4, seed: 47 };
        let mut spec =
            TrainSpec::test_default(cfg, Strategy::infinity_nvme().with_f32_params(), world);
        spec.steps = 6;
        spec.checkpoint_every = 2;
        spec.max_recoveries = 1;
        spec.collective_deadline = Duration::from_secs(10);
        spec
    }

    /// A rank killed mid-run with no recovery budget fails the session
    /// with a typed rank failure on a bounded clock — no survivor hangs.
    #[test]
    fn rank_kill_surfaces_as_typed_error_not_a_hang() {
        let mut spec = elastic_spec(3);
        spec.max_recoveries = 0;
        spec.checkpoint_every = 0;
        let faults = CommFaultPlan::new();
        faults.kill_rank_after_ops(1, 5);
        let mut env = TrainEnv::new(Arc::new(MemBackend::new()));
        env.comm_faults = faults.clone();
        let started = Instant::now();
        let err = match train_gpt_env(&spec, env) {
            Err(e) => e,
            Ok(_) => panic!("a killed rank must fail the session"),
        };
        assert!(err.is_rank_failure(), "expected a rank failure, got {err}");
        assert_eq!(faults.injected().rank_deaths, 1, "the scripted death must fire");
        // Coordinated abort wakes blocked peers immediately; the deadline
        // is only the backstop. Either way the session ends well inside
        // one deadline plus scheduling slack.
        assert!(
            started.elapsed() < spec.collective_deadline + Duration::from_secs(5),
            "rank death took {:?} to surface",
            started.elapsed()
        );
    }

    /// The end-to-end elasticity contract: kill one of four ranks
    /// mid-run; the survivors re-partition optimizer state from the
    /// last durable checkpoint, shrink to a 3-rank group and train to
    /// completion — and the recovered trajectory is bit-for-bit the one
    /// a fresh 3-rank session produces when resumed from the same
    /// re-sharded checkpoint.
    #[test]
    fn rank_death_mid_run_shrinks_world_and_matches_fresh_resume() {
        let spec = elastic_spec(4);
        let victim = 2usize;

        // Calibrate: count the victim's collective entries in a
        // fault-free run, then schedule its death at ~55% of them —
        // past the step-2 durable checkpoint, before the step-4 one.
        let quiet = CommFaultPlan::new();
        let mut env = TrainEnv::new(Arc::new(MemBackend::new()));
        env.comm_faults = quiet.clone();
        train_gpt_env(&spec, env).expect("calibration run");
        let total_ops = quiet.ops_seen(victim);
        assert!(total_ops > 0);

        let faults = CommFaultPlan::new();
        faults.kill_rank_after_ops(victim, total_ops * 55 / 100);
        let store = CheckpointStore::new(Arc::new(MemBackend::new()), 4, 2).unwrap();
        let mut env = TrainEnv::new(Arc::new(MemBackend::new()));
        env.comm_faults = faults.clone();
        env.store = Some(store.clone());
        let out = train_gpt_env(&spec, env).expect("elastic run must complete");

        assert_eq!(faults.injected().rank_deaths, 1, "the scripted death must fire");
        assert_eq!(out.recoveries, 1, "one recovery, the elastic one");
        assert_eq!(out.final_world, 3, "the session must finish on 3 ranks");
        assert_eq!(out.elastic.len(), 1);
        let ev = &out.elastic[0];
        assert_eq!(ev.from_world, 4);
        assert_eq!(ev.to_world, 3);
        assert_eq!(ev.failed_rank, Some(victim), "the latch must blame the victim");
        let v = ev.resumed_from_step.expect("a durable checkpoint must exist at the kill");
        assert!(v >= 2 && v < spec.steps, "kill landed at checkpoint {v}");
        assert_eq!(v % spec.checkpoint_every, 0);
        assert_eq!(out.losses.len(), spec.steps);

        // Fresh-resume reference: replay the fault-free 4-rank prefix up
        // to step v, re-shard its checkpoint 4 -> 3 by hand through the
        // public API, publish it into a fresh store, and run a clean
        // 3-rank session from it.
        let mut prefix_spec = elastic_spec(4);
        prefix_spec.steps = v;
        let prefix_store = CheckpointStore::new(Arc::new(MemBackend::new()), 4, 2).unwrap();
        let mut env = TrainEnv::new(Arc::new(MemBackend::new()));
        env.store = Some(prefix_store.clone());
        train_gpt_env(&prefix_spec, env).expect("prefix run");
        assert_eq!(prefix_store.latest_complete(4).unwrap(), Some(v as u64));

        let mut blobs = Vec::new();
        let mut saved_losses = Vec::new();
        for rank in 0..4 {
            let payload = prefix_store.load(rank, v as u64).unwrap();
            let (blob, losses) = decode_checkpoint_payload(&payload).unwrap();
            if rank == 0 {
                saved_losses = losses;
            }
            blobs.push(blob);
        }
        let resharded = reshard_checkpoint_blobs(&blobs, 3).unwrap();
        let fresh_store = CheckpointStore::new(Arc::new(MemBackend::new()), 3, 2).unwrap();
        for (rank, blob) in resharded.iter().enumerate() {
            let payload = encode_checkpoint_payload(blob, &saved_losses);
            fresh_store.save(rank, v as u64, &payload).unwrap();
        }

        let fresh_spec = elastic_spec(3);
        let mut env = TrainEnv::new(Arc::new(MemBackend::new()));
        env.store = Some(fresh_store);
        let fresh = train_gpt_env(&fresh_spec, env).expect("fresh 3-rank resume");
        assert!(fresh.elastic.is_empty());
        assert_eq!(
            fresh.losses, out.losses,
            "shrink-to-survivors must match fresh-from-checkpoint bit for bit"
        );
        for (a, b) in fresh.final_params.iter().zip(&out.final_params) {
            assert_eq!(a.data(), b.data(), "final params must match exactly");
        }
    }

}

mod orchestrator {
    use super::*;
    use zero_infinity::{train_gpt_env, TrainEnv, TrainOutcome};
    use zi_chaos::{
        check_outcome, ChaosConfig, ChaosEvent, ChaosPlan, FiredEvent, SessionSummary,
    };
    use zi_nvme::CheckpointStore;

    /// Eight steps with durable checkpoints at versions 3 and 6: a kill
    /// armed at step 4 lands past the v3 save and before the v6 one, so
    /// the elastic transitions below always reshard version 3.
    fn grow_spec() -> TrainSpec {
        let cfg = GptConfig { vocab: 16, hidden: 8, layers: 2, heads: 2, seq: 4, seed: 47 };
        let mut spec =
            TrainSpec::test_default(cfg, Strategy::infinity_nvme().with_f32_params(), 4);
        spec.steps = 8;
        spec.checkpoint_every = 3;
        spec.max_recoveries = 1;
        spec.collective_deadline = Duration::from_secs(10);
        spec
    }

    /// Wire one [`ChaosPlan`] into every plane the trainer exposes: its
    /// storage fault plan under the offload backend, its comm fault plan
    /// into the collectives, and the plan itself as the step-indexed
    /// event source.
    fn chaos_env(plan: &ChaosPlan) -> TrainEnv {
        let backend = Arc::new(FaultyBackend::new(MemBackend::new(), plan.storage_plan()));
        let mut env = TrainEnv::new(backend);
        env.policy = chaos_policy();
        env.comm_faults = plan.comm_plan();
        env.chaos = Some(plan.clone());
        env
    }

    fn summarize(spec: &TrainSpec, out: &TrainOutcome) -> SessionSummary {
        SessionSummary {
            initial_world: spec.world,
            final_world: out.final_world,
            recoveries: out.recoveries,
            elastic: out.elastic.iter().map(|e| (e.from_world, e.to_world)).collect(),
            completed: out.losses.len() == spec.steps,
        }
    }

    /// The world-grow contract end to end: one of four ranks is killed
    /// mid-run (shrink to 3, resharding the last durable checkpoint),
    /// then a replacement joins one step later (grow back to 4,
    /// resharding the *same* durable version — the 3-rank attempt never
    /// reached its next checkpoint). The grow consumes no recovery
    /// budget, and the final trajectory is bit-for-bit the uninterrupted
    /// 4-rank run's.
    #[test]
    fn rank_death_then_rejoin_grows_back_and_matches_uninterrupted_run() {
        let spec = grow_spec(); // max_recoveries = 1: the grow must be free
        let reference = train_gpt(&spec).expect("uninterrupted 4-rank run");

        let plan = ChaosPlan::new();
        plan.schedule(4, ChaosEvent::RankKill { rank: 2 });
        plan.schedule(5, ChaosEvent::RankJoin { ranks: 1 });
        let out = train_gpt_env(&spec, chaos_env(&plan)).expect("elastic grow run");

        assert_eq!(out.recoveries, 1, "the kill spends the only budget; the grow is free");
        assert_eq!(out.final_world, 4, "the joiner must be folded back in");
        assert_eq!(out.elastic.len(), 2, "exactly one shrink and one grow: {:?}", out.elastic);
        let shrink = &out.elastic[0];
        assert_eq!((shrink.from_world, shrink.to_world), (4, 3));
        assert_eq!(shrink.failed_rank, Some(2), "the shrink must blame the victim");
        assert_eq!(shrink.resumed_from_step, Some(3), "v3 is durable at the kill");
        let grow = &out.elastic[1];
        assert_eq!((grow.from_world, grow.to_world), (3, 4));
        assert_eq!(grow.failed_rank, None, "nothing fails on a grow");
        assert_eq!(
            grow.resumed_from_step,
            Some(3),
            "the grow reshards the same durable version the shrink used"
        );
        assert_eq!(out.losses, reference.losses, "grow-back must be numerically invisible");
        for (a, b) in reference.final_params.iter().zip(&out.final_params) {
            assert_eq!(a.data(), b.data(), "final params must match the uninterrupted run");
        }
        check_outcome(&plan.log(), &summarize(&spec, &out))
            .expect("outcome must be consistent with the armed schedule");
    }

    /// A composed schedule across all three fault planes in one session:
    /// silent read corruption, a permanent device death, a collective
    /// delay burst, a rank kill and a replacement join. The session
    /// absorbs the lot — corruption via CRC re-reads, the dead device
    /// via degraded CPU placement (at most one restart), the kill via an
    /// elastic shrink and the join via a free grow — and the event log
    /// accepts the outcome.
    #[test]
    fn composed_schedule_across_all_fault_planes_completes_consistently() {
        let mut spec = grow_spec();
        spec.max_recoveries = 2; // the kill, plus at most one device restart
        let plan = ChaosPlan::new();
        plan.schedule(1, ChaosEvent::Corruption { reads: 2 });
        plan.schedule(2, ChaosEvent::DeviceFail);
        plan.schedule(3, ChaosEvent::CommDelay { rank: 1, ops: 2, micros: 100 });
        plan.schedule(4, ChaosEvent::RankKill { rank: 2 });
        plan.schedule(5, ChaosEvent::RankJoin { ranks: 1 });
        let out = train_gpt_env(&spec, chaos_env(&plan)).expect("composed run completes");

        assert_eq!(out.losses.len(), spec.steps);
        assert!(out.degraded, "the dead device must leave the session degraded");
        assert!(
            (1..=2).contains(&out.recoveries),
            "the kill costs one recovery, the device death at most one more: {}",
            out.recoveries
        );
        let transitions: Vec<_> =
            out.elastic.iter().map(|e| (e.from_world, e.to_world)).collect();
        assert_eq!(transitions, vec![(4, 3), (3, 4)], "shrink on the kill, grow on the join");
        assert_eq!(out.final_world, 4);
        // Health counters are per-attempt (the final node may be fully
        // CPU-degraded with no NVMe reads at all), so corruption is
        // checked at the plan: the flips fired, and whatever attempt saw
        // them left nothing unrecovered.
        assert!(
            plan.storage_plan().injected().bitflips >= 1,
            "the corruption burst must fire before the device dies: {:?}",
            plan.storage_plan().injected()
        );
        assert_eq!(out.health.corruptions_unrecovered, 0);
        assert_eq!(plan.comm_plan().injected().rank_deaths, 1, "the scripted kill fired");
        assert!(plan.comm_plan().injected().delays >= 1, "the delay burst fired");
        assert_eq!(plan.log().len(), 5, "every scheduled event armed");
        check_outcome(&plan.log(), &summarize(&spec, &out))
            .expect("outcome must be consistent with the armed schedule");
    }

    /// A device death and a rank kill armed in the *same* step window.
    /// Which plane surfaces first is genuinely racy (the storage error
    /// may preempt the shrink or vice versa), so this pins the invariant
    /// class only: bounded typed recovery, a world no smaller than the
    /// kills allow, and an outcome the event log accepts.
    #[test]
    fn device_death_and_rank_kill_in_same_window_stay_bounded() {
        let mut spec = grow_spec();
        spec.max_recoveries = 2;
        let plan = ChaosPlan::new();
        plan.schedule(3, ChaosEvent::DeviceFail);
        plan.schedule(3, ChaosEvent::RankKill { rank: 1 });
        let out = train_gpt_env(&spec, chaos_env(&plan)).expect("combined-window run");

        assert_eq!(out.losses.len(), spec.steps);
        assert!(out.degraded, "the device really died");
        assert!(
            (1..=2).contains(&out.recoveries),
            "two disruptions, at most two recoveries: {}",
            out.recoveries
        );
        assert!(
            matches!(out.final_world, 3 | 4),
            "one kill shrinks by at most one rank: {}",
            out.final_world
        );
        check_outcome(&plan.log(), &summarize(&spec, &out))
            .expect("outcome must be consistent with the armed schedule");
    }

    /// The same-window composition on a *split* optimizer placement
    /// (250‰ of every NVMe-tier shard in CPU DRAM): the device death
    /// lands while the pipelined step is streaming the CPU and NVMe
    /// halves of each shard concurrently, and a rank kill arms in the
    /// same window. The split must not add failure modes: the invariant
    /// class stays exactly the single-path one — bounded typed
    /// recovery, a world no smaller than the kills allow, a session the
    /// event log accepts — and the degraded survivors keep training,
    /// which is only possible if the NVMe-resident halves were
    /// collapsed onto CPU rather than dropped. (Bit-identical resume of
    /// a split shard is pinned by the single-rank trainer regression
    /// test, where no world shrink muddies the trajectory.)
    #[test]
    fn device_death_and_rank_kill_with_split_placement_stay_bounded() {
        let mut spec = grow_spec();
        spec.strategy = spec.strategy.with_optimizer_cpu_permille(250);
        spec.max_recoveries = 2;

        let plan = ChaosPlan::new();
        plan.schedule(3, ChaosEvent::DeviceFail);
        plan.schedule(3, ChaosEvent::RankKill { rank: 1 });
        let out = train_gpt_env(&spec, chaos_env(&plan)).expect("split combined-window run");

        assert_eq!(out.losses.len(), spec.steps, "every step must complete");
        assert!(out.degraded, "the device really died");
        assert!(
            (1..=2).contains(&out.recoveries),
            "two disruptions, at most two recoveries: {}",
            out.recoveries
        );
        assert!(
            matches!(out.final_world, 3 | 4),
            "one kill shrinks by at most one rank: {}",
            out.final_world
        );
        assert!(
            out.health.failovers > 0,
            "post-death stores from split shards must land on CPU"
        );
        check_outcome(&plan.log(), &summarize(&spec, &out))
            .expect("outcome must be consistent with the armed schedule");
    }

    /// One seed, two sessions: the schedule, the fired event sequence
    /// and the loss trajectory all replay identically — the property the
    /// soak below leans on when it prints `ZI_CHAOS_SEED` on failure.
    #[test]
    fn seeded_chaos_replays_identical_event_sequence_end_to_end() {
        let config = ChaosConfig {
            steps: 8,
            world: 4,
            device_fail: 0.0, // keep both runs completing for the comparison
            rank_kill: 0.25,
            rank_join: 0.25,
            comm_delay: 0.3,
            corruption: 0.15,
            max_kills: 1,
            max_joins: 1,
        };
        let seed = 0x0be5_7a11u64;
        let run = || {
            let plan = ChaosPlan::seeded(seed, &config);
            let mut spec = grow_spec();
            spec.checkpoint_every = 2;
            spec.max_recoveries = 3;
            // Slots for the largest world the schedule may grow to.
            let store = CheckpointStore::new(
                Arc::new(MemBackend::new()),
                config.world + config.max_joins,
                2,
            )
            .unwrap();
            let mut env = chaos_env(&plan);
            env.store = Some(store);
            let out = train_gpt_env(&spec, env).expect("seeded run completes");
            (plan.events(), plan.log(), summarize(&spec, &out), out.losses)
        };
        let (events_a, log_a, summary_a, losses_a) = run();
        let (events_b, log_b, summary_b, losses_b) = run();

        assert!(!events_a.is_empty(), "this seed must generate a schedule");
        assert_eq!(events_a, events_b, "the schedule is a pure function of the seed");
        let identities =
            |log: &[FiredEvent]| log.iter().map(|f| (f.step, f.event)).collect::<Vec<_>>();
        assert_eq!(
            identities(&log_a),
            identities(&log_b),
            "the fired sequence must replay identically"
        );
        check_outcome(&log_a, &summary_a).expect("first run consistent");
        check_outcome(&log_b, &summary_b).expect("second run consistent");
        assert_eq!(losses_a, losses_b, "same seed, same trajectory");
    }

    /// Elevated-rate soak for the CI chaos stage (`scripts/ci.sh` runs
    /// this under a hard wall-clock timeout): a full composed schedule —
    /// device death, rank kills, joins, delay bursts, read corruption —
    /// generated from `ZI_CHAOS_SEED` (decimal or 0x-hex; defaulted
    /// here). The invariant is *bounded, typed failure*: the session
    /// either completes with an outcome its own event log accepts, or
    /// surfaces a classified error — never a hang, never a panic. Every
    /// assertion prints the seed, so any finding replays exactly.
    #[test]
    #[ignore = "elevated-rate soak; run via the scripts/ci.sh chaos stage"]
    fn chaos_soak_composed_schedules_stay_typed_and_bounded() {
        let seed = ChaosPlan::seed_from_env(0x5eed_cafe);
        let config = ChaosConfig {
            steps: 8,
            world: 4,
            device_fail: 0.08,
            rank_kill: 0.18,
            rank_join: 0.18,
            comm_delay: 0.25,
            corruption: 0.12,
            max_kills: 2,
            max_joins: 2,
        };
        let plan = ChaosPlan::seeded(seed, &config);

        let mut spec = grow_spec();
        spec.checkpoint_every = 1;
        spec.max_recoveries = 4;
        spec.collective_deadline = Duration::from_secs(5);
        // Provision the durable store for the largest world the schedule
        // may grow to, so no generated join can strand the session on
        // `IncompatibleWorld`.
        let store = CheckpointStore::new(
            Arc::new(MemBackend::new()),
            config.world + config.max_joins,
            2,
        )
        .unwrap();
        let mut env = chaos_env(&plan);
        env.store = Some(store);

        match train_gpt_env(&spec, env) {
            Ok(out) => {
                assert_eq!(
                    out.losses.len(),
                    spec.steps,
                    "truncated trajectory; replay with ZI_CHAOS_SEED={seed:#018x}"
                );
                if let Err(finding) = check_outcome(&plan.log(), &summarize(&spec, &out)) {
                    panic!(
                        "outcome inconsistent with the armed schedule: {finding}\n\
                         log: {:?}\nreplay with ZI_CHAOS_SEED={seed:#018x}",
                        plan.log()
                    );
                }
            }
            Err(e) => {
                assert!(
                    e.is_rank_failure() || e.is_device_failure() || e.is_membership_change(),
                    "soak must fail with a classified error, got {e}; \
                     replay with ZI_CHAOS_SEED={seed:#018x}"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Backoff schedules never exceed `max_backoff` and never shrink as
    /// attempts accumulate (exponential growth dominates the jitter).
    #[test]
    fn backoff_is_monotone_and_bounded(
        base_us in 1u64..5_000,
        max_us in 1u64..100_000,
        seed in 0u64..u64::MAX,
    ) {
        let policy = RetryPolicy {
            max_attempts: 10,
            base_backoff: Duration::from_micros(base_us),
            max_backoff: Duration::from_micros(max_us),
            deadline: Duration::from_secs(1),
            jitter_seed: seed,
        };
        let mut prev = Duration::ZERO;
        for attempt in 1..=12u32 {
            let b = policy.backoff(attempt);
            prop_assert!(b <= policy.max_backoff, "attempt {}: {:?} over cap", attempt, b);
            prop_assert!(b >= prev, "attempt {}: {:?} < {:?}", attempt, b, prev);
            prev = b;
        }
    }

    /// The jittered schedule is a pure function of (policy, attempt):
    /// re-running a failed workload replays identical timing.
    #[test]
    fn backoff_is_deterministic(seed in 0u64..u64::MAX, attempt in 1u32..24) {
        let mk = || RetryPolicy { jitter_seed: seed, ..RetryPolicy::default() };
        prop_assert_eq!(mk().backoff(attempt), mk().backoff(attempt));
    }

    /// Different seeds draw different jitter (the seed stream is not
    /// constant), while staying within the monotone envelope. Attempts
    /// are kept below the point where the default policy's `max_backoff`
    /// cap collapses every schedule to the same value.
    #[test]
    fn jitter_varies_across_seeds(attempt in 2u32..6) {
        let backoffs: Vec<Duration> = (0u64..32)
            .map(|seed| {
                RetryPolicy { jitter_seed: seed, ..RetryPolicy::default() }.backoff(attempt)
            })
            .collect();
        let first = backoffs[0];
        prop_assert!(
            backoffs.iter().any(|b| *b != first),
            "32 seeds all produced {:?} at attempt {}",
            first,
            attempt
        );
    }
}
