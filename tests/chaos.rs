//! Chaos suite: training under injected storage faults.
//!
//! The resilience contract (DESIGN.md, "Failure model & recovery") in
//! executable form:
//!
//! * **Soak** — a full multi-rank training run over a device that
//!   randomly fails reads and writes, tears writes and injects latency
//!   spikes must finish with a loss trajectory *bit-for-bit equal* to
//!   the fault-free run: every transient fault is absorbed by the retry
//!   layer, none escape to training code.
//! * **Retry policy properties** — backoff schedules are deterministic,
//!   monotone nondecreasing and bounded by `max_backoff`, for arbitrary
//!   policies.

use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;
use zero_infinity::{train_gpt, train_gpt_with_policy, Strategy, TrainSpec};
use zi_model::GptConfig;
use zi_nvme::{FaultPlan, FaultProfile, FaultyBackend, MemBackend, RetryPolicy};

fn chaos_policy() -> RetryPolicy {
    RetryPolicy {
        // Generous attempt budget: with per-op fault probability p, the
        // chance any single request exhausts 8 attempts is p^8 — at
        // p = 0.05 that is ~4e-11, so a soak of a few thousand ops gives
        // up with probability ~1e-7 (a give-up under multi-rank training
        // would strand sibling ranks in a collective).
        max_attempts: 8,
        base_backoff: Duration::from_micros(100),
        max_backoff: Duration::from_millis(2),
        deadline: Duration::from_secs(30),
        jitter_seed: 0xc4a0_5,
    }
}

fn soak_spec() -> TrainSpec {
    let cfg = GptConfig { vocab: 16, hidden: 8, layers: 2, heads: 2, seq: 4, seed: 13 };
    let mut spec = TrainSpec::test_default(cfg, Strategy::infinity_nvme().with_f32_params(), 2);
    spec.steps = 5;
    spec
}

/// Training over a lossy-but-alive device is numerically invisible:
/// same losses as the fault-free run, every fault absorbed by a retry,
/// zero requests given up, no degradation.
#[test]
fn chaos_soak_transient_faults_are_invisible() {
    let spec = soak_spec();
    let reference = train_gpt(&spec).expect("fault-free run");

    // Transient-only profile: torn writes heal on rewrite and spikes
    // only delay, so nothing here can corrupt state or kill the device.
    // (Bit-flips are exercised separately — they are *silent* faults,
    // repaired by the checksum layer, not the retry layer.)
    let profile = FaultProfile {
        read_fault: 0.05,
        write_fault: 0.05,
        torn_write: 0.03,
        latency_spike: 0.02,
        spike: Duration::from_micros(200),
        ..FaultProfile::quiet(0xdead_beef)
    };
    let plan = FaultPlan::probabilistic(profile);
    let backend = Arc::new(FaultyBackend::new(MemBackend::new(), plan.clone()));
    let out = train_gpt_with_policy(&spec, backend, chaos_policy()).expect("chaos run");

    let injected = plan.injected();
    assert!(
        injected.total_faults() > 0,
        "soak must actually inject faults, got {injected:?}"
    );
    assert!(out.health.io.retries > 0, "faults must be absorbed by retries");
    assert_eq!(out.health.io.gave_up, 0, "no request may exhaust its retry budget");
    assert!(!out.degraded, "transient faults must not degrade the device");
    assert_eq!(out.recoveries, 0, "transient faults must not force a restart");
    assert_eq!(
        out.losses, reference.losses,
        "chaos trajectory must equal the fault-free trajectory bit for bit"
    );
}

/// Silent read corruption (bit-flips in transit) is repaired end to end
/// by the checksum layer without changing training numerics.
#[test]
fn chaos_soak_bitflips_are_repaired_by_checksums() {
    let spec = soak_spec();
    let reference = train_gpt(&spec).expect("fault-free run");

    let plan = FaultPlan::new();
    // Corrupt a handful of early reads; the device data stays clean, so
    // every flip is repairable by a verified re-read.
    plan.bitflip_next_reads(5);
    let backend = Arc::new(FaultyBackend::new(MemBackend::new(), plan.clone()));
    let out = train_gpt_with_policy(&spec, backend, chaos_policy()).expect("bitflip run");

    assert_eq!(plan.injected().bitflips, 5, "all scripted flips must fire");
    assert!(
        out.health.corruptions_recovered > 0,
        "checksum layer must detect and repair flips: {:?}",
        out.health
    );
    assert_eq!(out.health.corruptions_unrecovered, 0);
    assert_eq!(out.losses, reference.losses, "repaired flips must be invisible");
}

/// The pipelined optimizer step (deep read pipeline + async
/// write-behind) keeps the full resilience contract: transient faults
/// and torn writes injected mid-step are absorbed by the retry layer,
/// the trajectory equals the fault-free run bit for bit, and nothing
/// gives up or degrades.
#[test]
fn chaos_pipelined_step_survives_transient_faults() {
    // Deep pipeline + tiny chunks: many concurrent in-flight requests
    // per step, so injected faults land on pipelined reads and
    // write-behind writes, not just on parameter traffic.
    let mut spec = soak_spec();
    spec.strategy = spec
        .strategy
        .with_optimizer_chunk(64)
        .with_step_pipeline_depth(3);
    let reference = train_gpt(&spec).expect("fault-free run");

    let profile = FaultProfile {
        read_fault: 0.05,
        write_fault: 0.05,
        torn_write: 0.03,
        latency_spike: 0.02,
        spike: Duration::from_micros(200),
        ..FaultProfile::quiet(0x0f_f10a_d)
    };
    let plan = FaultPlan::probabilistic(profile);
    let backend = Arc::new(FaultyBackend::new(MemBackend::new(), plan.clone()));
    let out = train_gpt_with_policy(&spec, backend, chaos_policy()).expect("chaos run");

    assert!(plan.injected().total_faults() > 0, "soak must inject faults");
    assert!(out.health.io.retries > 0, "faults must be absorbed by retries");
    assert_eq!(out.health.io.gave_up, 0, "no request may exhaust its retry budget");
    assert!(!out.degraded, "transient faults must not degrade the device");
    assert_eq!(
        out.losses, reference.losses,
        "pipelined chaos trajectory must equal the fault-free trajectory bit for bit"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Backoff schedules never exceed `max_backoff` and never shrink as
    /// attempts accumulate (exponential growth dominates the jitter).
    #[test]
    fn backoff_is_monotone_and_bounded(
        base_us in 1u64..5_000,
        max_us in 1u64..100_000,
        seed in 0u64..u64::MAX,
    ) {
        let policy = RetryPolicy {
            max_attempts: 10,
            base_backoff: Duration::from_micros(base_us),
            max_backoff: Duration::from_micros(max_us),
            deadline: Duration::from_secs(1),
            jitter_seed: seed,
        };
        let mut prev = Duration::ZERO;
        for attempt in 1..=12u32 {
            let b = policy.backoff(attempt);
            prop_assert!(b <= policy.max_backoff, "attempt {}: {:?} over cap", attempt, b);
            prop_assert!(b >= prev, "attempt {}: {:?} < {:?}", attempt, b, prev);
            prev = b;
        }
    }

    /// The jittered schedule is a pure function of (policy, attempt):
    /// re-running a failed workload replays identical timing.
    #[test]
    fn backoff_is_deterministic(seed in 0u64..u64::MAX, attempt in 1u32..24) {
        let mk = || RetryPolicy { jitter_seed: seed, ..RetryPolicy::default() };
        prop_assert_eq!(mk().backoff(attempt), mk().backoff(attempt));
    }

    /// Different seeds draw different jitter (the seed stream is not
    /// constant), while staying within the monotone envelope. Attempts
    /// are kept below the point where the default policy's `max_backoff`
    /// cap collapses every schedule to the same value.
    #[test]
    fn jitter_varies_across_seeds(attempt in 2u32..6) {
        let backoffs: Vec<Duration> = (0u64..32)
            .map(|seed| {
                RetryPolicy { jitter_seed: seed, ..RetryPolicy::default() }.backoff(attempt)
            })
            .collect();
        let first = backoffs[0];
        prop_assert!(
            backoffs.iter().any(|b| *b != first),
            "32 seeds all produced {:?} at attempt {}",
            first,
            attempt
        );
    }
}
