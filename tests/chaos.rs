//! Chaos suite: training under injected storage faults.
//!
//! The resilience contract (DESIGN.md, "Failure model & recovery") in
//! executable form:
//!
//! * **Soak** — a full multi-rank training run over a device that
//!   randomly fails reads and writes, tears writes and injects latency
//!   spikes must finish with a loss trajectory *bit-for-bit equal* to
//!   the fault-free run: every transient fault is absorbed by the retry
//!   layer, none escape to training code.
//! * **Retry policy properties** — backoff schedules are deterministic,
//!   monotone nondecreasing and bounded by `max_backoff`, for arbitrary
//!   policies.
//! * **Elasticity** — a rank killed mid-collective surfaces as a typed
//!   [`zi_types::Error::RankFailed`] on every survivor within the
//!   collective deadline (never a hang), and a session with recovery
//!   budget shrinks the world by one, re-partitions optimizer state from
//!   the last durable checkpoint and trains to completion with the same
//!   trajectory as a fresh session resumed from that checkpoint.

use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;
use zero_infinity::{train_gpt, train_gpt_with_policy, Strategy, TrainSpec};
use zi_model::GptConfig;
use zi_nvme::{FaultPlan, FaultProfile, FaultyBackend, MemBackend, RetryPolicy};

fn chaos_policy() -> RetryPolicy {
    RetryPolicy {
        // Generous attempt budget: with per-op fault probability p, the
        // chance any single request exhausts 8 attempts is p^8 — at
        // p = 0.05 that is ~4e-11, so a soak of a few thousand ops gives
        // up with probability ~1e-7 (a give-up under multi-rank training
        // would strand sibling ranks in a collective).
        max_attempts: 8,
        base_backoff: Duration::from_micros(100),
        max_backoff: Duration::from_millis(2),
        deadline: Duration::from_secs(30),
        jitter_seed: 0x000c_4a05,
    }
}

fn soak_spec() -> TrainSpec {
    let cfg = GptConfig { vocab: 16, hidden: 8, layers: 2, heads: 2, seq: 4, seed: 13 };
    let mut spec = TrainSpec::test_default(cfg, Strategy::infinity_nvme().with_f32_params(), 2);
    spec.steps = 5;
    spec
}

/// Training over a lossy-but-alive device is numerically invisible:
/// same losses as the fault-free run, every fault absorbed by a retry,
/// zero requests given up, no degradation.
#[test]
fn chaos_soak_transient_faults_are_invisible() {
    let spec = soak_spec();
    let reference = train_gpt(&spec).expect("fault-free run");

    // Transient-only profile: torn writes heal on rewrite and spikes
    // only delay, so nothing here can corrupt state or kill the device.
    // (Bit-flips are exercised separately — they are *silent* faults,
    // repaired by the checksum layer, not the retry layer.)
    let profile = FaultProfile {
        read_fault: 0.05,
        write_fault: 0.05,
        torn_write: 0.03,
        latency_spike: 0.02,
        spike: Duration::from_micros(200),
        ..FaultProfile::quiet(0xdead_beef)
    };
    let plan = FaultPlan::probabilistic(profile);
    let backend = Arc::new(FaultyBackend::new(MemBackend::new(), plan.clone()));
    let out = train_gpt_with_policy(&spec, backend, chaos_policy()).expect("chaos run");

    let injected = plan.injected();
    assert!(
        injected.total_faults() > 0,
        "soak must actually inject faults, got {injected:?}"
    );
    assert!(out.health.io.retries > 0, "faults must be absorbed by retries");
    assert_eq!(out.health.io.gave_up, 0, "no request may exhaust its retry budget");
    assert!(!out.degraded, "transient faults must not degrade the device");
    assert_eq!(out.recoveries, 0, "transient faults must not force a restart");
    assert_eq!(
        out.losses, reference.losses,
        "chaos trajectory must equal the fault-free trajectory bit for bit"
    );
}

/// Silent read corruption (bit-flips in transit) is repaired end to end
/// by the checksum layer without changing training numerics.
#[test]
fn chaos_soak_bitflips_are_repaired_by_checksums() {
    let spec = soak_spec();
    let reference = train_gpt(&spec).expect("fault-free run");

    let plan = FaultPlan::new();
    // Corrupt a handful of early reads; the device data stays clean, so
    // every flip is repairable by a verified re-read.
    plan.bitflip_next_reads(5);
    let backend = Arc::new(FaultyBackend::new(MemBackend::new(), plan.clone()));
    let out = train_gpt_with_policy(&spec, backend, chaos_policy()).expect("bitflip run");

    assert_eq!(plan.injected().bitflips, 5, "all scripted flips must fire");
    assert!(
        out.health.corruptions_recovered > 0,
        "checksum layer must detect and repair flips: {:?}",
        out.health
    );
    assert_eq!(out.health.corruptions_unrecovered, 0);
    assert_eq!(out.losses, reference.losses, "repaired flips must be invisible");
}

/// The pipelined optimizer step (deep read pipeline + async
/// write-behind) keeps the full resilience contract: transient faults
/// and torn writes injected mid-step are absorbed by the retry layer,
/// the trajectory equals the fault-free run bit for bit, and nothing
/// gives up or degrades.
#[test]
fn chaos_pipelined_step_survives_transient_faults() {
    // Deep pipeline + tiny chunks: many concurrent in-flight requests
    // per step, so injected faults land on pipelined reads and
    // write-behind writes, not just on parameter traffic.
    let mut spec = soak_spec();
    spec.strategy = spec
        .strategy
        .with_optimizer_chunk(64)
        .with_step_pipeline_depth(3);
    let reference = train_gpt(&spec).expect("fault-free run");

    let profile = FaultProfile {
        read_fault: 0.05,
        write_fault: 0.05,
        torn_write: 0.03,
        latency_spike: 0.02,
        spike: Duration::from_micros(200),
        ..FaultProfile::quiet(0x00ff_10ad)
    };
    let plan = FaultPlan::probabilistic(profile);
    let backend = Arc::new(FaultyBackend::new(MemBackend::new(), plan.clone()));
    let out = train_gpt_with_policy(&spec, backend, chaos_policy()).expect("chaos run");

    assert!(plan.injected().total_faults() > 0, "soak must inject faults");
    assert!(out.health.io.retries > 0, "faults must be absorbed by retries");
    assert_eq!(out.health.io.gave_up, 0, "no request may exhaust its retry budget");
    assert!(!out.degraded, "transient faults must not degrade the device");
    assert_eq!(
        out.losses, reference.losses,
        "pipelined chaos trajectory must equal the fault-free trajectory bit for bit"
    );
}

mod adaptive {
    use super::*;
    use zi_adapt::{Decision, ResetReason};

    /// Dead-device retries resolve instantly (the engine fail-fast latch
    /// sets after the first give-up); keep the budget small so the
    /// give-up itself is quick too.
    fn fast_policy() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 2,
            base_backoff: Duration::from_micros(10),
            max_backoff: Duration::from_micros(50),
            deadline: Duration::from_secs(5),
            jitter_seed: 7,
        }
    }

    /// Deliberately bad starting knobs (sequential step, no prefetch,
    /// single write-behind slot) so the controller has somewhere to go.
    fn adaptive_spec() -> TrainSpec {
        let cfg = GptConfig { vocab: 16, hidden: 8, layers: 2, heads: 2, seq: 4, seed: 61 };
        let strategy = Strategy::infinity_nvme()
            .with_f32_params()
            .with_step_pipeline_depth(1)
            .with_write_behind(1);
        let mut spec = TrainSpec::test_default(cfg, strategy, 1);
        spec.steps = 12;
        spec.prefetch_window = 0;
        spec.checkpoint_every = 2;
        spec.max_recoveries = 2;
        spec.adaptive = true;
        spec
    }

    /// NVMe→CPU failover without a restart: the device is dead before
    /// the first store, so every shard gracefully lands on CPU and the
    /// controller simply tunes the degraded regime it finds itself in.
    /// The restart budget stays untouched and the knob moves remain
    /// numerically invisible.
    #[test]
    fn adaptive_run_retunes_through_graceful_failover() {
        let spec = adaptive_spec();
        let reference = train_gpt(&TrainSpec { adaptive: false, ..spec }).unwrap();

        let plan = FaultPlan::new();
        plan.kill();
        let backend = Arc::new(FaultyBackend::new(MemBackend::new(), plan));
        let out = train_gpt_with_policy(&spec, backend, fast_policy()).unwrap();

        assert!(out.degraded, "run must report the failover");
        assert!(out.health.failovers > 0, "stores must have failed over to CPU");
        assert_eq!(out.recoveries, 0, "graceful failover must not spend the restart budget");
        assert_eq!(out.losses, reference.losses, "retuning must not change numerics");

        let tuned = out.tuned.expect("adaptive run reports final knobs");
        assert!(tuned.step_pipeline_depth >= 1);
        assert!(
            out.decisions
                .iter()
                .any(|e| matches!(e.decision, Decision::Probe { .. })),
            "the controller must actually search the degraded regime: {:?}",
            out.decisions
        );
    }

    /// NVMe death mid-run: one checkpoint restart (well inside the
    /// budget) brings the session back on a CPU-degraded node, the
    /// controller logs the regime reset and rebuilds its search from a
    /// fresh baseline, and the recovered trajectory is bit-for-bit the
    /// fault-free one.
    #[test]
    fn adaptive_controller_reconverges_after_midrun_failover() {
        let spec = adaptive_spec();
        let reference = train_gpt(&TrainSpec { adaptive: false, ..spec }).unwrap();

        // Calibrate the kill point on a fault-free instrumented device.
        // Adaptive op counts drift a little run to run (prefetch issue
        // depends on measured timings), so kill early — past the first
        // stores, with most of the run still ahead.
        let quiet = FaultPlan::new();
        let backend = Arc::new(FaultyBackend::new(MemBackend::new(), quiet.clone()));
        train_gpt_with_policy(&spec, backend, fast_policy()).unwrap();
        let total_ops = quiet.ops_seen();
        assert!(total_ops > 0);

        let plan = FaultPlan::new();
        plan.kill_after_ops(total_ops * 3 / 10);
        let backend = Arc::new(FaultyBackend::new(MemBackend::new(), plan.clone()));
        let out = train_gpt_with_policy(&spec, backend, fast_policy()).unwrap();

        assert!(plan.injected().dead_rejections > 0, "the device really died");
        assert!(out.recoveries >= 1, "mid-run death must force a restart");
        assert!(
            out.recoveries <= spec.max_recoveries,
            "the restart budget must hold"
        );
        assert!(out.degraded, "the replacement run must distrust the device");
        assert_eq!(out.losses, reference.losses, "recovery + retuning must be invisible");

        // The decision log spans both attempts: the reset marks the
        // regime change, and a fresh baseline after it proves the
        // search actually restarted instead of trusting stale measures.
        let reset = out
            .decisions
            .iter()
            .position(|e| {
                matches!(
                    e.decision,
                    Decision::RegimeReset { reason: ResetReason::CheckpointRestart }
                )
            })
            .expect("the restart must be logged as a regime reset");
        assert!(
            out.decisions[reset + 1..]
                .iter()
                .any(|e| matches!(e.decision, Decision::Baseline { .. })),
            "the controller must re-measure a baseline after the reset: {:?}",
            out.decisions
        );
        assert!(out.tuned.is_some(), "the session still reports final knobs");
    }
}

mod elasticity {
    use super::*;
    use std::time::Instant;
    use zero_infinity::{
        decode_checkpoint_payload, encode_checkpoint_payload, reshard_checkpoint_blobs,
        train_gpt_env, TrainEnv,
    };
    use zi_comm::{CommFaultPlan, CommFaultProfile};
    use zi_nvme::CheckpointStore;

    fn elastic_spec(world: usize) -> TrainSpec {
        let cfg = GptConfig { vocab: 16, hidden: 8, layers: 2, heads: 2, seq: 4, seed: 47 };
        let mut spec =
            TrainSpec::test_default(cfg, Strategy::infinity_nvme().with_f32_params(), world);
        spec.steps = 6;
        spec.checkpoint_every = 2;
        spec.max_recoveries = 1;
        spec.collective_deadline = Duration::from_secs(10);
        spec
    }

    /// A rank killed mid-run with no recovery budget fails the session
    /// with a typed rank failure on a bounded clock — no survivor hangs.
    #[test]
    fn rank_kill_surfaces_as_typed_error_not_a_hang() {
        let mut spec = elastic_spec(3);
        spec.max_recoveries = 0;
        spec.checkpoint_every = 0;
        let faults = CommFaultPlan::new();
        faults.kill_rank_after_ops(1, 5);
        let mut env = TrainEnv::new(Arc::new(MemBackend::new()));
        env.comm_faults = faults.clone();
        let started = Instant::now();
        let err = match train_gpt_env(&spec, env) {
            Err(e) => e,
            Ok(_) => panic!("a killed rank must fail the session"),
        };
        assert!(err.is_rank_failure(), "expected a rank failure, got {err}");
        assert_eq!(faults.injected().rank_deaths, 1, "the scripted death must fire");
        // Coordinated abort wakes blocked peers immediately; the deadline
        // is only the backstop. Either way the session ends well inside
        // one deadline plus scheduling slack.
        assert!(
            started.elapsed() < spec.collective_deadline + Duration::from_secs(5),
            "rank death took {:?} to surface",
            started.elapsed()
        );
    }

    /// The end-to-end elasticity contract: kill one of four ranks
    /// mid-run; the survivors re-partition optimizer state from the
    /// last durable checkpoint, shrink to a 3-rank group and train to
    /// completion — and the recovered trajectory is bit-for-bit the one
    /// a fresh 3-rank session produces when resumed from the same
    /// re-sharded checkpoint.
    #[test]
    fn rank_death_mid_run_shrinks_world_and_matches_fresh_resume() {
        let spec = elastic_spec(4);
        let victim = 2usize;

        // Calibrate: count the victim's collective entries in a
        // fault-free run, then schedule its death at ~55% of them —
        // past the step-2 durable checkpoint, before the step-4 one.
        let quiet = CommFaultPlan::new();
        let mut env = TrainEnv::new(Arc::new(MemBackend::new()));
        env.comm_faults = quiet.clone();
        train_gpt_env(&spec, env).expect("calibration run");
        let total_ops = quiet.ops_seen(victim);
        assert!(total_ops > 0);

        let faults = CommFaultPlan::new();
        faults.kill_rank_after_ops(victim, total_ops * 55 / 100);
        let store = CheckpointStore::new(Arc::new(MemBackend::new()), 4, 2).unwrap();
        let mut env = TrainEnv::new(Arc::new(MemBackend::new()));
        env.comm_faults = faults.clone();
        env.store = Some(store.clone());
        let out = train_gpt_env(&spec, env).expect("elastic run must complete");

        assert_eq!(faults.injected().rank_deaths, 1, "the scripted death must fire");
        assert_eq!(out.recoveries, 1, "one recovery, the elastic one");
        assert_eq!(out.final_world, 3, "the session must finish on 3 ranks");
        assert_eq!(out.elastic.len(), 1);
        let ev = &out.elastic[0];
        assert_eq!(ev.from_world, 4);
        assert_eq!(ev.to_world, 3);
        assert_eq!(ev.failed_rank, Some(victim), "the latch must blame the victim");
        let v = ev.resumed_from_step.expect("a durable checkpoint must exist at the kill");
        assert!(v >= 2 && v < spec.steps, "kill landed at checkpoint {v}");
        assert_eq!(v % spec.checkpoint_every, 0);
        assert_eq!(out.losses.len(), spec.steps);

        // Fresh-resume reference: replay the fault-free 4-rank prefix up
        // to step v, re-shard its checkpoint 4 -> 3 by hand through the
        // public API, publish it into a fresh store, and run a clean
        // 3-rank session from it.
        let mut prefix_spec = elastic_spec(4);
        prefix_spec.steps = v;
        let prefix_store = CheckpointStore::new(Arc::new(MemBackend::new()), 4, 2).unwrap();
        let mut env = TrainEnv::new(Arc::new(MemBackend::new()));
        env.store = Some(prefix_store.clone());
        train_gpt_env(&prefix_spec, env).expect("prefix run");
        assert_eq!(prefix_store.latest_complete(4).unwrap(), Some(v as u64));

        let mut blobs = Vec::new();
        let mut saved_losses = Vec::new();
        for rank in 0..4 {
            let payload = prefix_store.load(rank, v as u64).unwrap();
            let (blob, losses) = decode_checkpoint_payload(&payload).unwrap();
            if rank == 0 {
                saved_losses = losses;
            }
            blobs.push(blob);
        }
        let resharded = reshard_checkpoint_blobs(&blobs, 3).unwrap();
        let fresh_store = CheckpointStore::new(Arc::new(MemBackend::new()), 3, 2).unwrap();
        for (rank, blob) in resharded.iter().enumerate() {
            let payload = encode_checkpoint_payload(blob, &saved_losses);
            fresh_store.save(rank, v as u64, &payload).unwrap();
        }

        let fresh_spec = elastic_spec(3);
        let mut env = TrainEnv::new(Arc::new(MemBackend::new()));
        env.store = Some(fresh_store);
        let fresh = train_gpt_env(&fresh_spec, env).expect("fresh 3-rank resume");
        assert!(fresh.elastic.is_empty());
        assert_eq!(
            fresh.losses, out.losses,
            "shrink-to-survivors must match fresh-from-checkpoint bit for bit"
        );
        for (a, b) in fresh.final_params.iter().zip(&out.final_params) {
            assert_eq!(a.data(), b.data(), "final params must match exactly");
        }
    }

    /// Elevated-rate soak for the CI chaos stage (`scripts/ci.sh` runs
    /// this under a hard wall-clock timeout): probabilistic rank deaths
    /// and entry delays on the collectives plus transient faults on the
    /// offload device. The invariant is *bounded, typed failure*: the
    /// session either completes with a consistent elastic history or
    /// surfaces a classified error — it never hangs and never panics.
    #[test]
    #[ignore = "elevated-rate soak; run via the scripts/ci.sh chaos stage"]
    fn chaos_soak_rank_deaths_stay_typed_and_bounded() {
        let mut spec = elastic_spec(4);
        spec.steps = 8;
        spec.checkpoint_every = 1;
        spec.max_recoveries = 3;
        spec.collective_deadline = Duration::from_secs(5);

        let comm_profile = CommFaultProfile {
            rank_death: 0.002,
            delay: 0.05,
            spike: Duration::from_micros(200),
            ..CommFaultProfile::quiet(0x5eed_cafe)
        };
        let storage_profile = FaultProfile {
            read_fault: 0.03,
            write_fault: 0.03,
            torn_write: 0.02,
            latency_spike: 0.01,
            spike: Duration::from_micros(100),
            ..FaultProfile::quiet(0x0dd_ba11)
        };
        let backend = Arc::new(FaultyBackend::new(
            MemBackend::new(),
            FaultPlan::probabilistic(storage_profile),
        ));
        let mut env = TrainEnv::new(backend);
        env.policy = chaos_policy();
        env.comm_faults = CommFaultPlan::probabilistic(comm_profile);
        match train_gpt_env(&spec, env) {
            Ok(out) => {
                assert_eq!(out.losses.len(), spec.steps);
                assert_eq!(out.final_world, spec.world - out.elastic.len());
                for pair in out.elastic.windows(2) {
                    assert_eq!(pair[0].to_world, pair[1].from_world);
                }
            }
            Err(e) => {
                assert!(
                    e.is_rank_failure() || e.is_device_failure(),
                    "soak must fail with a classified error, got {e}"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Backoff schedules never exceed `max_backoff` and never shrink as
    /// attempts accumulate (exponential growth dominates the jitter).
    #[test]
    fn backoff_is_monotone_and_bounded(
        base_us in 1u64..5_000,
        max_us in 1u64..100_000,
        seed in 0u64..u64::MAX,
    ) {
        let policy = RetryPolicy {
            max_attempts: 10,
            base_backoff: Duration::from_micros(base_us),
            max_backoff: Duration::from_micros(max_us),
            deadline: Duration::from_secs(1),
            jitter_seed: seed,
        };
        let mut prev = Duration::ZERO;
        for attempt in 1..=12u32 {
            let b = policy.backoff(attempt);
            prop_assert!(b <= policy.max_backoff, "attempt {}: {:?} over cap", attempt, b);
            prop_assert!(b >= prev, "attempt {}: {:?} < {:?}", attempt, b, prev);
            prev = b;
        }
    }

    /// The jittered schedule is a pure function of (policy, attempt):
    /// re-running a failed workload replays identical timing.
    #[test]
    fn backoff_is_deterministic(seed in 0u64..u64::MAX, attempt in 1u32..24) {
        let mk = || RetryPolicy { jitter_seed: seed, ..RetryPolicy::default() };
        prop_assert_eq!(mk().backoff(attempt), mk().backoff(attempt));
    }

    /// Different seeds draw different jitter (the seed stream is not
    /// constant), while staying within the monotone envelope. Attempts
    /// are kept below the point where the default policy's `max_backoff`
    /// cap collapses every schedule to the same value.
    #[test]
    fn jitter_varies_across_seeds(attempt in 2u32..6) {
        let backoffs: Vec<Duration> = (0u64..32)
            .map(|seed| {
                RetryPolicy { jitter_seed: seed, ..RetryPolicy::default() }.backoff(attempt)
            })
            .collect();
        let first = backoffs[0];
        prop_assert!(
            backoffs.iter().any(|b| *b != first),
            "32 seeds all produced {:?} at attempt {}",
            first,
            attempt
        );
    }
}
