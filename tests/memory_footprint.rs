//! The paper's memory arithmetic, measured on the real engine.
//!
//! Sec. 3 says mixed-precision Adam training costs 20 bytes per
//! parameter: fp16 param (2) + fp16 grad (2) + fp32 master, momentum,
//! variance and gradient (16). This engine's *at-rest* footprint is the
//! persistent subset — fp16 param (2) + fp32 master/momentum/variance
//! (12) = 14 bytes/param — because gradient buffers (the remaining 6
//! bytes/param of the paper's budget) are allocated lazily during the
//! backward pass and freed at the optimizer step. Table 2 says each
//! strategy distributes these bytes across tiers differently; these
//! tests measure the *actual* bytes charged to each real memory pool and
//! check the distribution.

use zi_sync::Arc;

use zero_infinity_suite::model::{GptConfig, GptModel, RunOptions};
use zero_infinity_suite::optim::AdamConfig;
use zero_infinity_suite::zero::{trainer::synthetic_batch, NodeResources, Strategy, ZeroEngine};
use zi_memory::NodeMemorySpec;
use zi_types::{Device, DeviceKind};

fn cfg() -> GptConfig {
    GptConfig { vocab: 32, hidden: 16, layers: 2, heads: 4, seq: 8, seed: 44 }
}

/// Bytes on (aggregate GPU, CPU, NVMe) after engine init across `world`
/// ranks, under `strategy`.
fn measure(strategy: Strategy, world: usize) -> (u64, u64, u64, usize) {
    let node = Arc::new(NodeResources::in_memory(
        &NodeMemorySpec::test_spec(world, 1 << 26, 1 << 27, 1 << 27),
        world,
    ));
    let mut handles = Vec::new();
    for rank in 0..world {
        let node = Arc::clone(&node);
        handles.push(zi_sync::thread::spawn(move || {
            let model = GptModel::new(cfg());
            let engine = ZeroEngine::new(
                model.registry(),
                strategy,
                node.offload_manager(),
                node.group.communicator(rank),
                AdamConfig::default(),
            )
            .expect("engine");
            // Hold until every rank is initialized, then let rank 0
            // measure while all engines are still alive; a second barrier
            // orders dispose after the measurement.
            node.group.communicator(rank).barrier().unwrap();
            let measured = if rank == 0 {
                let gpu: u64 =
                    (0..world).map(|r| node.hierarchy.stats(Device::gpu(r)).in_use).sum();
                let cpu = node.hierarchy.stats(Device::cpu()).in_use;
                let nvme = node.hierarchy.stats(Device::nvme()).in_use;
                Some((gpu, cpu, nvme))
            } else {
                None
            };
            node.group.communicator(rank).barrier().unwrap();
            engine.dispose().expect("dispose");
            measured
        }));
    }
    let mut measured = None;
    for h in handles {
        if let Some(m) = h.join().expect("rank") {
            measured = Some(m);
        }
    }
    let params = GptModel::new(cfg()).registry().total_numel();
    let (g, c, n) = measured.expect("rank 0 measurement");
    (g, c, n, params)
}

/// Padding makes per-param byte counts slightly exceed the ideal; allow
/// 15% slack upward and none downward beyond rounding.
fn assert_close(actual: u64, ideal: f64, what: &str) {
    let a = actual as f64;
    assert!(
        a >= ideal * 0.99 && a <= ideal * 1.15,
        "{what}: measured {a} vs ideal {ideal}"
    );
}

#[test]
fn data_parallel_costs_20_bytes_per_param_per_rank() {
    let world = 2;
    let (gpu, cpu, nvme, p) = measure(Strategy::data_parallel(), world);
    // Everything replicated on every GPU: 14 at-rest bytes * P * world.
    assert_close(gpu, 14.0 * p as f64 * world as f64, "DP gpu bytes");
    assert_eq!(cpu, 0);
    assert_eq!(nvme, 0);
}

#[test]
fn zero3_partitions_all_20_bytes() {
    let world = 4;
    let (gpu, cpu, nvme, p) = measure(Strategy::zero_3(), world);
    // Fully partitioned: aggregate GPU holds exactly one copy.
    assert_close(gpu, 14.0 * p as f64, "ZeRO-3 aggregate gpu bytes");
    assert_eq!(cpu, 0);
    assert_eq!(nvme, 0);
}

#[test]
fn zero_offload_moves_18_bytes_to_cpu() {
    let world = 2;
    let (gpu, cpu, nvme, p) = measure(Strategy::zero_offload(), world);
    // fp16 params replicated on GPU (2 bytes * P * world); grads (created
    // lazily, so 0 at init) and optimizer (12 bytes * P total) on CPU.
    assert_close(gpu, 2.0 * p as f64 * world as f64, "Offload gpu bytes");
    assert_close(cpu, 12.0 * p as f64, "Offload cpu bytes");
    assert_eq!(nvme, 0);
}

#[test]
fn infinity_nvme_leaves_gpu_empty() {
    let world = 2;
    let (gpu, cpu, nvme, p) = measure(Strategy::infinity_nvme(), world);
    // Params (2B) + optimizer (12B) on NVMe, nothing resident on GPU or
    // CPU at rest.
    assert_eq!(gpu, 0, "Infinity-NVMe must keep GPUs empty at rest");
    assert_eq!(cpu, 0);
    assert_close(nvme, 14.0 * p as f64, "Infinity-NVMe nvme bytes");
}

/// During a training step the GPU holds only gathered working tensors;
/// at rest it returns to the strategy's baseline.
#[test]
fn working_memory_is_transient() {
    let node = NodeResources::in_memory(&NodeMemorySpec::test_spec(1, 1 << 26, 1 << 27, 1 << 27), 1);
    let model = GptModel::new(cfg());
    let mut engine = ZeroEngine::new(
        model.registry(),
        Strategy::infinity_cpu().with_f32_params(),
        node.offload_manager(),
        node.group.communicator(0),
        AdamConfig::default(),
    )
    .unwrap();
    assert_eq!(node.hierarchy.stats(Device::gpu(0)).in_use, 0);
    let (tokens, targets) = synthetic_batch(&cfg(), 1, 0);
    model
        .train_step(&mut engine, &tokens, &targets, &RunOptions::default())
        .unwrap();
    engine.step().unwrap();
    // After the step, no gathered params remain resident.
    assert_eq!(node.hierarchy.stats(Device::gpu(0)).in_use, 0);
    // But the peak shows working memory was actually used.
    assert!(node.hierarchy.stats(Device::gpu(0)).peak_in_use > 0);
    engine.dispose().unwrap();
}

/// The largest single GPU allocation during a step is the biggest
/// gathered parameter (MSWM, Eq. 4) — fetching params one module at a
/// time keeps the footprint at parameter scale, not model scale.
#[test]
fn peak_gpu_is_module_scale_not_model_scale() {
    let node = NodeResources::in_memory(&NodeMemorySpec::test_spec(1, 1 << 26, 1 << 27, 1 << 27), 1);
    let model = GptModel::new(cfg());
    let mut engine = ZeroEngine::new(
        model.registry(),
        Strategy::infinity_cpu().with_f32_params(),
        node.offload_manager(),
        node.group.communicator(0),
        AdamConfig::default(),
    )
    .unwrap();
    let (tokens, targets) = synthetic_batch(&cfg(), 1, 0);
    model
        .train_step(&mut engine, &tokens, &targets, &RunOptions::default())
        .unwrap();
    let peak = node.hierarchy.stats(Device::gpu(0)).peak_in_use as usize;
    let total_params = model.registry().total_numel();
    // Peak working memory (one block's params + embeddings, f32) is far
    // below the whole model's f32 footprint.
    assert!(
        peak < total_params * 4 / 2,
        "peak {peak} should be well under full-model bytes {}",
        total_params * 4
    );
    // And it is at least the largest single parameter (the embedding).
    let wte_bytes = 32 * 16 * 4;
    assert!(peak >= wte_bytes, "peak {peak} below largest parameter {wte_bytes}");
    engine.dispose().unwrap();
}

/// Device-placement sanity across the whole Table 2 ladder: slower tiers
/// only gain bytes as the strategy moves down the table.
#[test]
fn table2_ladder_shifts_bytes_downward() {
    let world = 2;
    let mut prev_gpu = u64::MAX;
    for strategy in [
        Strategy::data_parallel(),
        Strategy::zero_2(),
        Strategy::zero_offload(),
        Strategy::infinity_cpu(),
        Strategy::infinity_nvme(),
    ] {
        let (gpu, cpu, nvme, _) = measure(strategy, world);
        assert!(
            gpu <= prev_gpu,
            "{}: gpu bytes should not grow down the ladder ({gpu} > {prev_gpu})",
            strategy.name
        );
        prev_gpu = gpu;
        match strategy.placement.optimizer {
            DeviceKind::Gpu => assert_eq!(cpu + nvme, 0, "{}", strategy.name),
            DeviceKind::Cpu => assert!(cpu > 0, "{}", strategy.name),
            DeviceKind::Nvme => assert!(nvme > 0, "{}", strategy.name),
        }
    }
}
