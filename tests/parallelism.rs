//! Integration: all three parallelism axes through the public API.
//!
//! The paper's baseline (3D parallelism) combines tensor slicing,
//! pipeline stages and data parallelism; ZeRO-Infinity replaces the need
//! for the first two. This suite checks that every axis implemented here
//! is numerically transparent — the same model, same data, same
//! trajectory, regardless of how the computation is carved up.

use zero_infinity_suite::model::GptConfig;
use zero_infinity_suite::optim::AdamConfig;
use zero_infinity_suite::zero::{
    train_gpt_2d, train_gpt_pipeline, PipelineSpec, Spec2D, Strategy,
};

fn cfg() -> GptConfig {
    GptConfig { vocab: 24, hidden: 16, layers: 4, heads: 4, seq: 6, seed: 55 }
}

fn adam() -> AdamConfig {
    AdamConfig { lr: 0.015, ..Default::default() }
}

/// Pipeline stages vs tensor slices vs flat: under batch-1 single-group
/// data parallelism all three must produce the same losses, because they
/// carve the *same* computation differently.
#[test]
fn all_axes_agree_on_the_same_computation() {
    let steps = 3;

    // Flat: 1 stage, 1 slice.
    let flat = train_gpt_pipeline(&PipelineSpec {
        model: cfg(),
        stages: 1,
        micro_batches: 1,
        micro_batch: 1,
        steps,
        adam: adam(),
    })
    .unwrap();

    // Pipeline: 4 stages.
    let pipelined = train_gpt_pipeline(&PipelineSpec {
        model: cfg(),
        stages: 4,
        micro_batches: 1,
        micro_batch: 1,
        steps,
        adam: adam(),
    })
    .unwrap();

    // Tensor slicing: mp=4 (+ ZeRO-Infinity NVMe offload underneath).
    let sliced = train_gpt_2d(&Spec2D {
        model: cfg(),
        strategy: Strategy::infinity_nvme().with_f32_params(),
        mp: 4,
        dp: 1,
        micro_batch: 1,
        steps,
        adam: adam(),
    })
    .unwrap();

    for (step, ((a, b), c)) in flat.iter().zip(&pipelined).zip(&sliced).enumerate() {
        assert!(
            (a - b).abs() < 1e-4,
            "pipeline diverged at step {step}: {flat:?} vs {pipelined:?}"
        );
        assert!(
            (a - c).abs() < 1e-4,
            "tensor slicing diverged at step {step}: {flat:?} vs {sliced:?}"
        );
    }
}

/// The 2-D mp x dp grid with fp16 NVMe offload still converges.
#[test]
fn two_d_grid_with_fp16_offload_learns() {
    let losses = train_gpt_2d(&Spec2D {
        model: cfg(),
        strategy: Strategy::infinity_nvme(),
        mp: 2,
        dp: 2,
        micro_batch: 2,
        steps: 8,
        adam: adam(),
    })
    .unwrap();
    assert!(losses.last().unwrap() < &losses[0], "{losses:?}");
}

/// GPipe micro-batching with multiple stages keeps learning.
#[test]
fn pipeline_with_micro_batches_learns() {
    let losses = train_gpt_pipeline(&PipelineSpec {
        model: cfg(),
        stages: 2,
        micro_batches: 2,
        micro_batch: 2,
        steps: 10,
        adam: adam(),
    })
    .unwrap();
    let head: f32 = losses[..3].iter().sum::<f32>() / 3.0;
    let tail: f32 = losses[losses.len() - 3..].iter().sum::<f32>() / 3.0;
    assert!(tail < head, "{losses:?}");
}
