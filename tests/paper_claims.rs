//! Cross-crate checks of the paper's headline claims: the analytic model
//! (`zi-perf`), the cluster simulator (`zi-sim`) and the real engine
//! (`zero-infinity`) must tell one consistent story.

use zi_perf::efficiency::{bandwidth_for_efficiency, V100_PEAK_TP};
use zi_perf::memory::{ModelShape, TrainingShape};
use zi_perf::{ait_optimizer_states, ait_params_grads};
use zi_sim::cluster::ClusterSpec;
use zi_sim::figures;
use zi_sim::model_cfg::SimStrategy;

/// Sec. 5.2 bandwidth thresholds: 70 GB/s (params), ~1.5 TB/s
/// (optimizer) — and the DGX-2 hardware provides them via GPU-GPU links
/// and aggregate slow-memory bandwidth respectively.
#[test]
fn bandwidth_thresholds_are_met_by_the_hardware_model() {
    let c = ClusterSpec::dgx2(32);

    // Params/grads: the paper claims the GPU-GPU fabric (~70 GB/s)
    // suffices even at batch 1.
    let need_params = bandwidth_for_efficiency(ait_params_grads(1024, 1), V100_PEAK_TP, 0.5);
    assert!(c.gg_bw >= need_params * 0.95, "gg {} vs needed {need_params}", c.gg_bw);

    // Optimizer: ~1.5 TB/s aggregate at batch 2; 512 GPUs × 3 GB/s CPU
    // bandwidth provides exactly that.
    let need_optim = bandwidth_for_efficiency(ait_optimizer_states(1024, 2), V100_PEAK_TP, 0.9);
    let aggregate_cpu = c.total_gpus() as f64 * c.cpu_bw_per_gpu;
    assert!(
        aggregate_cpu >= need_optim * 0.9,
        "aggregate {aggregate_cpu} vs needed {need_optim}"
    );
}

/// Fig. 2a ↔ zi-sim consistency: the same model shapes must produce the
/// same state-byte counts in both crates.
#[test]
fn memory_model_consistent_across_crates() {
    let shape = ModelShape { layers: 128, hidden: 25 * 1024, attn_heads: 256 };
    let sim_model = zi_sim::model_cfg::table1_512gpu()
        .into_iter()
        .find(|m| m.name == "1T")
        .unwrap();
    assert_eq!(shape.params(), sim_model.params);
    // 20 bytes/param everywhere.
    assert_eq!(shape.model_state_bytes(), 20 * sim_model.params);
}

/// The capacity solver's single-node NVMe ceiling (~1T) must be what the
/// aggregate NVMe capacity divided by 20 B/param predicts.
#[test]
fn capacity_solver_matches_closed_form() {
    let c = ClusterSpec::dgx2(1);
    let fam = zi_sim::model_cfg::fig1_family();
    let ceiling = zi_sim::capacity::max_model_size(SimStrategy::InfinityNvme, &c, &fam)
        .unwrap()
        .params as f64;
    let closed_form = c.total_nvme() as f64 / 20.0;
    assert!(ceiling <= closed_form);
    // The family is dense enough that the solver lands within 2.5x of the
    // theoretical bound.
    assert!(ceiling * 2.5 >= closed_form, "{ceiling} vs {closed_form}");
}

/// The real-engine Fig. 6b result and the working-memory formula agree:
/// tiling by T lets hidden grow by ~sqrt(T) under a fixed fragment size
/// (working set of one tile is 4*hd*4*hd/T bytes).
#[test]
fn tiling_scaling_matches_mswm_formula() {
    let h1 = zi_bench::max_hidden_size(1).expect("untiled sweep");
    let h16 = zi_bench::max_hidden_size(16).expect("16-way sweep");
    // sqrt(16) = 4 with doubling granularity.
    assert_eq!(h16 / h1, 4, "h1={h1} h16={h16}");
    // And the untiled ceiling is what the fragment size implies:
    // largest h with 16*h^2*4 bytes (f32 working copy of the 4h×h tile
    // set) ≤ fragment.
    let frag = zi_bench::fig6b::FRAGMENT_BYTES as f64;
    let predicted = (frag / 16.0).sqrt() as usize;
    // h1 is the largest power of two ≤ predicted.
    assert!(h1 <= predicted && h1 * 2 > predicted, "h1={h1} predicted={predicted}");
}

/// The activation working-memory expression (Eq. 5) dominates the
/// checkpoint expression (Eq. 3) — AWM is what recomputation holds.
#[test]
fn awm_exceeds_checkpoint_footprint_per_interval() {
    let m = ModelShape { layers: 100, hidden: 8192, attn_heads: 32 };
    let t = TrainingShape { model: m, batch: 8, seq: 1024, ckpt_interval: 1 };
    let awm = t.awm_bytes();
    let per_layer_ckpt = t.activation_checkpoint_bytes() / m.layers;
    assert!(awm > per_layer_ckpt, "AWM {awm} vs per-layer ckpt {per_layer_ckpt}");
}

/// Fig. 5a and Fig. 1 agree on where 3D parallelism dies.
#[test]
fn threed_oom_point_is_consistent() {
    let fig1 = figures::fig1();
    let threed_ceiling = fig1[0].max_params;
    for row in figures::fig5a() {
        if row.strategy == SimStrategy::ThreeD {
            let model_params = zi_sim::model_cfg::table1_512gpu()
                .into_iter()
                .find(|m| m.name == row.model)
                .unwrap()
                .params;
            assert_eq!(
                row.fits,
                model_params <= threed_ceiling,
                "{}: fig5a fits={} but ceiling={}",
                row.model,
                row.fits,
                threed_ceiling
            );
        }
    }
}
