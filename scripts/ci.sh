#!/usr/bin/env bash
# Repo CI gate: build, tier-1 + workspace tests, lints.
# Run from the repo root: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --workspace -- -D warnings
# Bench smoke: run every engine benchmark body exactly once, untimed
# (the vendored criterion's --test mode), so bench-only regressions
# fail CI without paying full measurement time.
cargo bench -p zi-bench --bench engine_bench -- --test
