#!/usr/bin/env bash
# Repo CI gate: build, tier-1 + workspace tests, lints.
# Run from the repo root: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --workspace -- -D warnings
# Deterministic model checking: rebuild with --cfg zi_check so every
# zi-sync lock/condvar/channel/atomic routes through the zi-check
# scheduler, then run the detector's seeded-bug fixtures and the five
# protocol harnesses (barrier rank-death, engine flush barrier,
# checkpoint crash recovery, pool checkout/return, trace ring drain,
# knob hand-off, kernel worker-pool tiling).
# Each harness must
# cover >= 1000 distinct schedules or exhaust its space; failures print
# a ZI_CHECK_SEED/ZI_CHECK_TRACE replay line. Bounded by a hard
# wall-clock timeout so a checker bug can never wedge the pipeline.
timeout --kill-after=10s 600s \
    env RUSTFLAGS="--cfg zi_check" cargo test -q -p zi-check \
    || { echo "zi-check model checking failed or timed out (exit $?)"; exit 1; }
# Undefined-behaviour pass over the unsafe-bearing leaf crates. The
# pinned offline toolchain does not always ship Miri; skip (loudly)
# when it is absent rather than failing the gate on tooling.
if cargo miri --version >/dev/null 2>&1; then
    cargo miri test -p zi-types -p zi-tensor
else
    echo "cargo miri unavailable in this toolchain; skipping UB pass"
fi
# Bench smoke: run every engine benchmark body exactly once, untimed
# (the vendored criterion's --test mode), so bench-only regressions
# fail CI without paying full measurement time.
cargo bench -p zi-bench --bench engine_bench -- --test
# Chaos soak: elevated-rate rank-death + delay + storage-fault run
# (the #[ignore]d soak in tests/chaos.rs). The resilience contract is
# "bounded, typed failure — never a hang", so the stage itself carries
# a hard wall-clock timeout: if the soak wedges, CI fails in 120s
# instead of hanging the pipeline (124 is coreutils timeout's exit
# code for "killed by timeout").
timeout --kill-after=10s 120s \
    cargo test -q --test chaos -- --ignored \
    || { echo "chaos soak failed or timed out (exit $?)"; exit 1; }
# Trace stage: run a traced 2-rank 2-step train_gpt sweep through the
# overlap reporter. trace_report exits nonzero itself when any depth
# produces an empty overlap report or the exported Chrome-trace JSON
# fails to re-parse with at least one span per hop (nc/cg/gg), so this
# stage needs no extra validation beyond the exit code and the two
# artifacts existing afterwards.
TRACE_DIR="$(mktemp -d)"
trap 'rm -rf "$TRACE_DIR"' EXIT
cargo run -q --release -p zi-bench --bin trace_report -- \
    "$TRACE_DIR/BENCH_trace_overlap.json" "$TRACE_DIR/trace_train_step.json" \
    || { echo "trace stage failed: empty report or invalid Chrome trace (exit $?)"; exit 1; }
test -s "$TRACE_DIR/BENCH_trace_overlap.json" || { echo "trace stage wrote no overlap report"; exit 1; }
test -s "$TRACE_DIR/trace_train_step.json" || { echo "trace stage wrote no Chrome trace"; exit 1; }
# Adaptive stage: convergence bench in bounded/quick mode (simulated
# backend, short horizon). adaptive_report exits nonzero when the
# controller ends in a config worse than its starting point, so the
# stage needs only the exit code plus the artifact existing. Hard
# timeout: the loop is bounded by construction, so a wedge is a bug.
timeout --kill-after=10s 300s \
    cargo run -q --release -p zi-bench --bin adaptive_report -- \
    "$TRACE_DIR/BENCH_adaptive.json" --quick \
    || { echo "adaptive stage failed: controller regressed from its start (exit $?)"; exit 1; }
test -s "$TRACE_DIR/BENCH_adaptive.json" || { echo "adaptive stage wrote no report"; exit 1; }
# Kernels stage: SIMD layer smoke. kernels_report --quick times every
# dispatched kernel under forced-scalar and auto and exits nonzero if
# a detected SIMD backend lost to scalar (dispatch regression); then
# the tensor/optim unit suites re-run with the scalar fallback forced,
# so the portable path keeps full coverage even on AVX2 machines.
timeout --kill-after=10s 300s \
    cargo run -q --release -p zi-bench --bin kernels_report -- \
    "$TRACE_DIR/BENCH_kernels.json" --quick \
    || { echo "kernels stage failed: SIMD slower than scalar (exit $?)"; exit 1; }
test -s "$TRACE_DIR/BENCH_kernels.json" || { echo "kernels stage wrote no report"; exit 1; }
ZI_SIMD=scalar cargo test -q -p zi-tensor -p zi-optim \
    || { echo "scalar-forced unit suites failed"; exit 1; }
