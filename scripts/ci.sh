#!/usr/bin/env bash
# Repo CI gate: build, tier-1 + workspace tests, lints.
# Run from the repo root: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --workspace -- -D warnings
