#!/usr/bin/env bash
# Repo CI gate: build, tier-1 + workspace tests, lints.
# Run from the repo root: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --workspace -- -D warnings
# Bench smoke: run every engine benchmark body exactly once, untimed
# (the vendored criterion's --test mode), so bench-only regressions
# fail CI without paying full measurement time.
cargo bench -p zi-bench --bench engine_bench -- --test
# Chaos soak: elevated-rate rank-death + delay + storage-fault run
# (the #[ignore]d soak in tests/chaos.rs). The resilience contract is
# "bounded, typed failure — never a hang", so the stage itself carries
# a hard wall-clock timeout: if the soak wedges, CI fails in 120s
# instead of hanging the pipeline (124 is coreutils timeout's exit
# code for "killed by timeout").
timeout --kill-after=10s 120s \
    cargo test -q --test chaos -- --ignored \
    || { echo "chaos soak failed or timed out (exit $?)"; exit 1; }
