//! Elastic world-grow resume through the crash-consistent
//! [`CheckpointStore`]: the same durable checkpoint carries a training
//! session from 3 data-parallel ranks onto 4, two different ways.
//!
//! **Path A — in-session grow.** A 3-rank session checkpoints into a
//! store provisioned with one spare rank slot. Mid-run a replacement
//! rank asks to join ([`ChaosPlan`] schedules the membership event);
//! the running group retires voluntarily at its next barrier, the
//! session re-partitions optimizer state from the last durable version
//! onto 4 ranks and trains on. No recovery budget is spent — nothing
//! failed.
//!
//! **Path B — resume from the durable store.** A 3-rank session runs
//! the same prefix and exits after publishing the checkpoint (simulated
//! process exit). A 4-rank cluster then reattaches to the store file,
//! re-shards the 3 optimizer shards onto 4 through the public
//! checkpoint API, and resumes to completion.
//!
//! Both paths replay the exact same token stream from the same durable
//! state, so their trajectories — and final parameters — match bit for
//! bit.
//!
//! Run with: `cargo run --release --example resume_training`

use zi_sync::Arc;

use zero_infinity_suite::chaos::{ChaosEvent, ChaosPlan};
use zero_infinity_suite::model::GptConfig;
use zero_infinity_suite::zero::{
    decode_checkpoint_payload, encode_checkpoint_payload, reshard_checkpoint_blobs,
    train_gpt_env, Strategy, TrainEnv, TrainSpec,
};
use zi_nvme::{CheckpointStore, FileBackend, MemBackend};

fn spec(world: usize) -> TrainSpec {
    let cfg = GptConfig { vocab: 32, hidden: 16, layers: 2, heads: 4, seq: 8, seed: 42 };
    let mut spec =
        TrainSpec::test_default(cfg, Strategy::infinity_nvme().with_f32_params(), world);
    spec.steps = 8;
    spec.checkpoint_every = 3; // durable at v3 and v6
    spec
}

fn main() {
    // --- Path A: 3 ranks, a replacement joins at step 5. ------------
    let grown = {
        // One spare slot: the store must be provisioned for the largest
        // world the session may grow to.
        let store =
            CheckpointStore::new(Arc::new(MemBackend::new()), 4, 2).expect("create store");
        let plan = ChaosPlan::new();
        plan.schedule(5, ChaosEvent::RankJoin { ranks: 1 });
        let mut env = TrainEnv::new(Arc::new(MemBackend::new()));
        env.store = Some(store);
        env.chaos = Some(plan);
        train_gpt_env(&spec(3), env).expect("elastic grow session")
    };
    assert_eq!(grown.final_world, 4, "the joiner must be folded in");
    assert_eq!(grown.recoveries, 0, "a grow spends no recovery budget");
    let ev = &grown.elastic[0];
    let version = ev.resumed_from_step.expect("a durable version backs the grow");
    println!(
        "in-session grow: world {} -> {}, resharded durable v{version}, {} recoveries",
        ev.from_world, ev.to_world, grown.recoveries
    );

    // --- Path B: durable 3-rank prefix, then a 4-rank resume. --------
    let path = std::env::temp_dir().join(format!("zi_grow_{}.ckpt", std::process::id()));
    {
        let mut prefix = spec(3);
        prefix.steps = version; // stop right after the durable save
        let backend = Arc::new(FileBackend::create(&path).expect("create store file"));
        let store = CheckpointStore::new(backend, 4, 2).expect("create store");
        let mut env = TrainEnv::new(Arc::new(MemBackend::new()));
        env.store = Some(store);
        train_gpt_env(&prefix, env).expect("3-rank prefix");
    } // store (and its background writer) dropped: simulated process exit

    // Reattach from nothing but the file, as a restarted — and larger —
    // cluster would, and re-shard the newest durable version 3 -> 4.
    let backend = Arc::new(FileBackend::open(&path).expect("reopen store file"));
    let store = CheckpointStore::open(backend).expect("reopen store");
    let v = store
        .latest_complete(3)
        .expect("scan store")
        .expect("a complete checkpoint must exist");
    assert_eq!(v as usize, version);
    let mut blobs = Vec::new();
    let mut saved_losses = Vec::new();
    for rank in 0..3 {
        let payload = store.load(rank, v).expect("load shard");
        let (blob, losses) = decode_checkpoint_payload(&payload).expect("decode");
        if rank == 0 {
            saved_losses = losses;
        }
        blobs.push(blob);
    }
    let resharded = reshard_checkpoint_blobs(&blobs, 4).expect("reshard 3 -> 4");
    for (rank, blob) in resharded.iter().enumerate() {
        let payload = encode_checkpoint_payload(blob, &saved_losses);
        store.save(rank, v, &payload).expect("republish at world 4");
    }
    println!("reattached {}: re-sharded durable v{v} onto 4 ranks", path.display());

    let mut env = TrainEnv::new(Arc::new(MemBackend::new()));
    env.store = Some(store);
    let resumed = train_gpt_env(&spec(4), env).expect("4-rank resume");
    std::fs::remove_file(&path).ok();
    assert!(resumed.elastic.is_empty(), "a clean resume needs no elasticity");

    // --- The two paths must agree exactly. ---------------------------
    println!();
    println!("{:>5} {:>14} {:>14}", "step", "in-session", "store-resume");
    for (i, (a, b)) in grown.losses.iter().zip(&resumed.losses).enumerate() {
        println!("{i:>5} {a:>14.6} {b:>14.6}");
        assert_eq!(a, b, "trajectory diverged at step {i}");
    }
    for (a, b) in grown.final_params.iter().zip(&resumed.final_params) {
        assert_eq!(a.data(), b.data(), "final params must match exactly");
    }
    println!();
    println!("Both 3 -> 4 grow paths are bit-identical from durable v{version}.");
}
