//! Checkpoint / resume through the crash-consistent [`CheckpointStore`]:
//! save a rank's training state mid-run into a versioned on-disk store,
//! reattach to the store in a fresh engine (as a restarted process
//! would), and continue — reproducing the uninterrupted trajectory
//! exactly.
//!
//! Each rank saves only its own optimizer shard (~12 bytes x params / dp),
//! the same no-replication principle ZeRO applies to training itself.
//! The store adds a superblock + per-slot manifest with CRC32-C over
//! both manifest and payload, publishes each save atomically, and on
//! recovery offers the newest version that is durably complete — so a
//! crash mid-save can never surface a torn checkpoint.
//!
//! Run with: `cargo run --release --example resume_training`

use std::sync::Arc;

use zero_infinity_suite::model::{GptConfig, GptModel, RunOptions};
use zero_infinity_suite::optim::AdamConfig;
use zero_infinity_suite::zero::trainer::synthetic_batch;
use zero_infinity_suite::zero::{NodeResources, Strategy, ZeroEngine};
use zi_memory::NodeMemorySpec;
use zi_nvme::{CheckpointStore, FileBackend};

fn new_engine(model: &GptModel) -> (NodeResources, ZeroEngine) {
    let node =
        NodeResources::in_memory(&NodeMemorySpec::test_spec(1, 1 << 24, 1 << 26, 1 << 26), 1);
    let engine = ZeroEngine::new(
        model.registry(),
        Strategy::infinity_nvme(),
        node.offload_manager(),
        node.group.communicator(0),
        AdamConfig { lr: 0.01, ..Default::default() },
    )
    .expect("engine");
    (node, engine)
}

fn steps(
    model: &GptModel,
    engine: &mut ZeroEngine,
    cfg: &GptConfig,
    range: std::ops::Range<usize>,
) -> Vec<f32> {
    let opts = RunOptions { batch: 2, ..Default::default() };
    range
        .map(|step| {
            let (tokens, targets) = synthetic_batch(cfg, 2, step);
            let loss = model.train_step(engine, &tokens, &targets, &opts).expect("step");
            engine.step().expect("optimizer");
            loss
        })
        .collect()
}

fn main() {
    let cfg = GptConfig { vocab: 32, hidden: 16, layers: 2, heads: 4, seq: 8, seed: 42 };
    let model = GptModel::new(cfg);

    // Reference: 8 uninterrupted steps.
    let (_n1, mut continuous) = new_engine(&model);
    let reference = steps(&model, &mut continuous, &cfg, 0..8);

    // Interrupted: 4 steps, durable save into a 2-slot on-disk store.
    let path = std::env::temp_dir().join(format!("zi_resume_{}.ckpt", std::process::id()));
    let (_n2, mut first_half) = new_engine(&model);
    let before = steps(&model, &mut first_half, &cfg, 0..4);
    {
        let backend = Arc::new(FileBackend::create(&path).expect("create store file"));
        let store = CheckpointStore::new(backend, 1, 2).expect("create store");
        let blob = first_half.save_state().expect("save");
        store.save(0, 4, &blob).expect("durable save");
        println!("checkpoint v4 published: {} bytes at {}", blob.len(), path.display());
    } // store (and its background writer) dropped: simulated process exit
    first_half.dispose().expect("dispose");

    // Resume: reattach to the store from nothing but the file, ask for
    // the newest durably complete version, and load it.
    let backend = Arc::new(FileBackend::open(&path).expect("reopen store file"));
    let store = CheckpointStore::open(backend).expect("reopen store");
    let version = store
        .latest_complete(1)
        .expect("scan store")
        .expect("a complete checkpoint must exist");
    let (_n3, mut resumed) = new_engine(&model);
    resumed.load_state(&store.load(0, version).expect("load v4")).expect("load");
    println!("recovered checkpoint v{version} after reattach");
    let after = steps(&model, &mut resumed, &cfg, version as usize..8);
    std::fs::remove_file(&path).ok();

    println!();
    println!("{:>5} {:>14} {:>14}", "step", "continuous", "interrupted");
    for (i, r) in reference.iter().enumerate() {
        let other = if i < 4 { before[i] } else { after[i - 4] };
        println!("{i:>5} {r:>14.6} {other:>14.6}");
        assert_eq!(*r, other, "trajectory diverged at step {i}");
    }
    println!();
    println!("Resumed training is bit-identical to the uninterrupted run.");
}
