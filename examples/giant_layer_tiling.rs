//! Memory-centric tiling demo (paper Sec. 5.1.3 and Fig. 6b).
//!
//! Pre-fragments GPU memory so that no contiguous allocation above 256 KiB
//! can succeed (the scaled-down analogue of the paper's 2 GB pre-
//! fragmentation), then tries to run the transformer's largest operator —
//! the `hidden -> 4*hidden` linear — first untiled (it OOMs) and then
//! with increasing tiling factors (it fits).
//!
//! Run with: `cargo run --release --example giant_layer_tiling`

use zero_infinity_suite::optim::AdamConfig;
use zero_infinity_suite::tensor::Tensor;
use zero_infinity_suite::zero::{NodeResources, Strategy, TiledLinear, ZeroEngine};
use zi_memory::NodeMemorySpec;
use zi_model::ParamRegistry;

const FRAGMENT: u64 = 256 * 1024;

fn try_layer(hidden: usize, tiles: usize) -> Result<(), String> {
    let spec = NodeMemorySpec::test_spec(1, 1 << 28, 1 << 28, 1 << 28);
    let node = NodeResources::in_memory(&spec, 1);
    node.hierarchy.prefragment_gpu(0, FRAGMENT);

    let mut reg = ParamRegistry::new();
    let layer = TiledLinear::register(&mut reg, "ffn", hidden, 4 * hidden, tiles, 7, 0.02)
        .map_err(|e| e.to_string())?;
    let mut engine = ZeroEngine::new(
        &reg,
        Strategy::infinity_cpu(),
        node.offload_manager(),
        node.group.communicator(0),
        AdamConfig::default(),
    )
    .map_err(|e| e.to_string())?;

    let x = Tensor::randn_seeded(&[2, hidden], 3, 0.1);
    let y = layer.forward(&mut engine, &x).map_err(|e| e.to_string())?;
    let dy = Tensor::randn_seeded(&[2, 4 * hidden], 4, 0.1);
    layer.backward(&mut engine, &x, &dy).map_err(|e| e.to_string())?;
    engine.step().map_err(|e| e.to_string())?;
    drop(y);
    Ok(())
}

fn main() {
    let hidden = 512;
    println!(
        "GPU memory pre-fragmented into {} KiB chunks; largest operator is the \
         {}x{} linear ({} KiB of working memory untiled).",
        FRAGMENT / 1024,
        4 * hidden,
        hidden,
        4 * hidden * hidden * 4 / 1024,
    );
    println!();
    for tiles in [1usize, 2, 4, 8, 16] {
        match try_layer(hidden, tiles) {
            Ok(()) => println!("tiling factor {tiles:>2}: trains fine"),
            Err(e) => println!("tiling factor {tiles:>2}: {e}"),
        }
    }
    println!();
    println!(
        "Memory-centric tiling breaks the operator into sequentially executed \
         tiles, so no model parallelism is needed for huge hidden sizes."
    );
}
