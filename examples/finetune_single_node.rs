//! "Democratizing large model training" (paper Sec. 8.4, Fig. 5c).
//!
//! A model whose 20-bytes-per-parameter state cannot fit the node's GPU
//! pools is fine-tuned anyway by moving model states to CPU and NVMe with
//! ZeRO-Infinity — no model parallelism, no code refactoring. The example
//! prints where the bytes actually live, trains a few steps against a
//! real file-backed NVMe device, and reports throughput counters.
//!
//! Run with: `cargo run --release --example finetune_single_node`

use zero_infinity_suite::model::{GptConfig, GptModel, RunOptions};
use zero_infinity_suite::optim::AdamConfig;
use zero_infinity_suite::zero::{NodeResources, Strategy, ZeroEngine};
use zi_memory::NodeMemorySpec;
use zi_types::Device;

fn main() {
    // A model that is deliberately too big for the toy GPUs below:
    // ~400k parameters -> ~8 MB of model states at 20 B/param, against
    // GPU pools of 1 MB each.
    let cfg = GptConfig { vocab: 64, hidden: 64, layers: 6, heads: 4, seq: 16, seed: 11 };
    let model = GptModel::new(cfg);
    let total = model.registry().total_numel();
    println!("model: {} parameters, ~{} KB of model states (20 B/param)", total, total * 20 / 1024);

    let world = 2;
    let spec = NodeMemorySpec::test_spec(world, 1 << 20, 1 << 26, 1 << 28);
    println!(
        "node: {} GPUs x {} KB HBM, {} MB CPU, {} MB NVMe (file-backed)",
        world,
        (1 << 20) / 1024,
        (1 << 26) / (1 << 20),
        (1 << 28) / (1 << 20)
    );

    let dir = std::env::temp_dir().join(format!("zi_finetune_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let node = NodeResources::with_file_nvme(&spec, world, &dir.join("nvme.dev"))
        .expect("file-backed NVMe");

    // Train on rank threads manually (the long-hand version of
    // `train_gpt`, to show the per-rank API).
    let node = zi_sync::Arc::new(node);
    let mut handles = Vec::new();
    for rank in 0..world {
        let node = zi_sync::Arc::clone(&node);
        handles.push(zi_sync::thread::spawn(move || {
            let model = GptModel::new(cfg);
            let mut engine = ZeroEngine::new(
                model.registry(),
                Strategy::infinity_nvme(),
                node.offload_manager(),
                node.group.communicator(rank),
                AdamConfig { lr: 0.005, ..Default::default() },
            )
            .expect("engine");
            let opts = RunOptions {
                batch: 2,
                activation_checkpointing: true,
                prefetch_window: 2,
            };
            let rows = 2 * cfg.seq;
            let mut losses = Vec::new();
            for step in 0..8usize {
                let (tokens, targets) =
                    zero_infinity_suite::zero::trainer::synthetic_batch(&cfg, 2 * world, step);
                let lo = rank * rows;
                let loss = model
                    .train_step(&mut engine, &tokens[lo..lo + rows], &targets[lo..lo + rows], &opts)
                    .expect("train step");
                engine.step().expect("optimizer step");
                losses.push(node.group.communicator(rank).sum_scalar(loss).unwrap() / world as f32);
            }
            (rank, losses, engine.stats())
        }));
    }
    for h in handles {
        let (rank, losses, stats) = h.join().expect("rank thread");
        if rank == 0 {
            println!();
            for (s, l) in losses.iter().enumerate() {
                println!("step {s}: loss {l:.4}");
            }
            println!();
            println!(
                "rank 0 engine: {} allgathers ({} elements), {} optimizer chunks streamed, \
                 prefetch hits {}",
                stats.allgathers, stats.gathered_elems, stats.optimizer_chunks,
                stats.prefetch.hits
            );
        }
    }
    for dev in [Device::gpu(0), Device::cpu(), Device::nvme()] {
        let s = node.hierarchy.stats(dev);
        println!(
            "{dev}: peak {} KB used of {} KB",
            s.peak_in_use / 1024,
            s.capacity / 1024
        );
    }
    std::fs::remove_dir_all(&dir).ok();
    println!();
    println!("A model ~8x larger than aggregate GPU memory fine-tuned on one node.");
}
