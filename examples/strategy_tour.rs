//! Tour of every Table 2 device-placement strategy.
//!
//! Trains the same model with the same data under classic data
//! parallelism, ZeRO-1/2/3, ZeRO-Offload, ZeRO-Infinity (CPU) and
//! ZeRO-Infinity (NVMe), and shows that — with fp32 parameter storage —
//! every strategy reproduces the dense single-process baseline exactly,
//! while placing model states on progressively slower, larger tiers.
//!
//! Run with: `cargo run --release --example strategy_tour`

use zero_infinity_suite::model::GptConfig;
use zero_infinity_suite::optim::AdamConfig;
use zero_infinity_suite::zero::trainer::train_dense_baseline;
use zero_infinity_suite::zero::{train_gpt, Strategy, TrainSpec};
use zi_memory::NodeMemorySpec;

fn main() {
    let model = GptConfig { vocab: 16, hidden: 8, layers: 2, heads: 2, seq: 4, seed: 7 };
    let adam = AdamConfig { lr: 0.01, ..Default::default() };
    let world = 2;
    let micro = 2;
    let steps = 5;

    let (baseline, _) =
        train_dense_baseline(&model, world * micro, steps, adam, false).expect("baseline");
    println!("dense baseline losses: {baseline:?}");
    println!();
    println!(
        "{:<16} {:>10} {:>10} {:>14}  placement (P/G/O)",
        "strategy", "first", "last", "max |Δ loss|"
    );

    for strategy in Strategy::table2() {
        let spec = TrainSpec {
            model,
            strategy: strategy.with_f32_params(),
            world,
            micro_batch: micro,
            steps,
            adam,
            grad_accumulation: 1,
            schedule: None,
            node: NodeMemorySpec::test_spec(world, 1 << 24, 1 << 26, 1 << 26),
            activation_checkpointing: false,
            offload_activations: false,
            prefetch_window: 2,
            checkpoint_every: 0,
            max_recoveries: 0,
            collective_deadline: std::time::Duration::from_secs(30),
            adaptive: false,
        };
        let out = train_gpt(&spec).expect("strategy run");
        let max_d = out
            .losses
            .iter()
            .zip(&baseline)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        println!(
            "{:<16} {:>10.4} {:>10.4} {:>14.2e}  {}/{}/{}",
            strategy.name,
            out.losses[0],
            out.losses.last().unwrap(),
            max_d,
            strategy.placement.params,
            strategy.placement.grads,
            strategy.placement.optimizer,
        );
        assert!(max_d < 1e-4, "{} diverged from the baseline", strategy.name);
    }
    println!();
    println!("All seven strategies reproduce the dense baseline bit-for-bit (fp32 storage).");
}
