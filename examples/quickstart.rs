//! Quickstart: train a tiny GPT with ZeRO-Infinity NVMe offload.
//!
//! Spawns 4 data-parallel ranks (threads), partitions every parameter
//! across them, keeps parameter and optimizer state on a simulated NVMe
//! device, and trains a next-token task for 20 steps.
//!
//! Run with: `cargo run --release --example quickstart`

use zero_infinity_suite::model::GptConfig;
use zero_infinity_suite::optim::AdamConfig;
use zero_infinity_suite::zero::{train_gpt, Strategy, TrainSpec};
use zi_memory::NodeMemorySpec;

fn main() {
    let model = GptConfig {
        vocab: 32,
        hidden: 16,
        layers: 2,
        heads: 4,
        seq: 8,
        seed: 42,
    };

    let spec = TrainSpec {
        model,
        strategy: Strategy::infinity_nvme(),
        world: 4,
        micro_batch: 2,
        steps: 20,
        adam: AdamConfig { lr: 0.01, ..Default::default() },
        grad_accumulation: 1,
        schedule: None,
        node: NodeMemorySpec::test_spec(4, 1 << 24, 1 << 26, 1 << 26),
        activation_checkpointing: true,
        offload_activations: false,
        prefetch_window: 2,
        checkpoint_every: 0,
        max_recoveries: 0,
        collective_deadline: std::time::Duration::from_secs(30),
        adaptive: false,
    };

    println!("training a {}-parameter GPT with {}", param_count(&model), spec.strategy.name);
    let out = train_gpt(&spec).expect("training should succeed");

    for (step, loss) in out.losses.iter().enumerate() {
        println!("step {step:>2}: loss {loss:.4}");
    }
    let first = out.losses[0];
    let last = *out.losses.last().unwrap();
    println!();
    println!("loss {first:.4} -> {last:.4} ({} steps)", out.losses.len());
    println!(
        "engine activity: {} allgathers, {} grad reductions, {} optimizer chunks, \
         prefetch hits {} / misses {}",
        out.stats.allgathers,
        out.stats.grad_reductions,
        out.stats.optimizer_chunks,
        out.stats.prefetch.hits,
        out.stats.prefetch.misses,
    );
    assert!(last < first, "loss should decrease");
    println!("OK: ZeRO-Infinity trained with params and optimizer state on NVMe.");
}

fn param_count(cfg: &GptConfig) -> usize {
    zero_infinity_suite::model::GptModel::new(*cfg).registry().total_numel()
}
