//! Train with ZeRO-Infinity, then run inference through the very same
//! partitioned, NVMe-offloaded parameters — no "export to a dense model"
//! step needed, because the engine serves forward-only passes with the
//! same fetch/release protocol as training.
//!
//! The task is learnable by heart: next token = (token + 1) mod vocab.
//! After training, greedy decoding must reproduce the rule.
//!
//! Run with: `cargo run --release --example train_and_generate`

use zero_infinity_suite::model::{GptConfig, GptModel, RunOptions};
use zero_infinity_suite::optim::{AdamConfig, LrSchedule};
use zero_infinity_suite::zero::{NodeResources, Strategy, ZeroEngine};
use zi_memory::NodeMemorySpec;

fn main() {
    let cfg = GptConfig { vocab: 8, hidden: 16, layers: 2, heads: 2, seq: 4, seed: 21 };
    let model = GptModel::new(cfg);
    let node =
        NodeResources::in_memory(&NodeMemorySpec::test_spec(1, 1 << 24, 1 << 26, 1 << 26), 1);
    let mut engine = ZeroEngine::new(
        model.registry(),
        Strategy::infinity_nvme(),
        node.offload_manager(),
        node.group.communicator(0),
        AdamConfig { lr: 0.01, ..Default::default() },
    )
    .expect("engine");

    let schedule = LrSchedule {
        base_lr: 0.02,
        warmup_steps: 20,
        total_steps: 300,
        min_lr: 0.002,
    };
    let opts = RunOptions { batch: 4, ..Default::default() };
    let rows = 4 * cfg.seq;
    println!("training 300 steps on the (+1 mod {}) task with warmup+cosine LR...", cfg.vocab);
    let mut last = 0.0;
    for step in 0..300usize {
        engine.set_lr(schedule.lr_at(step as u64));
        let tokens: Vec<usize> = (0..rows).map(|i| (i * 3 + step * 5 + 1) % cfg.vocab).collect();
        let targets: Vec<usize> = tokens.iter().map(|&t| (t + 1) % cfg.vocab).collect();
        last = model.train_step(&mut engine, &tokens, &targets, &opts).expect("train");
        engine.step().expect("optimizer");
        if step % 60 == 0 {
            println!("step {step:>3}: loss {last:.4}, lr {:.4}", schedule.lr_at(step as u64));
        }
    }
    println!("final loss {last:.4}");
    println!();

    // Greedy generation: feed a seed, predict the next token for each
    // position, roll the window forward.
    let mut sequence = vec![3usize, 4, 5, 6];
    print!("seed: {sequence:?} -> generated:");
    for _ in 0..8 {
        let window: Vec<usize> = sequence[sequence.len() - cfg.seq..].to_vec();
        let preds = model.predict_next(&mut engine, &window).expect("inference");
        let next = *preds.last().expect("non-empty");
        print!(" {next}");
        sequence.push(next);
    }
    println!();

    // Verify the model learned the rule.
    let learned = sequence
        .windows(2)
        .filter(|w| w[1] == (w[0] + 1) % cfg.vocab)
        .count();
    println!(
        "{}/{} transitions follow (+1 mod {}) — generated through NVMe-partitioned weights",
        learned,
        sequence.len() - 1,
        cfg.vocab
    );
    assert!(learned >= sequence.len() - 2, "the model should have learned the rule");
}
