//! ZeRO-Infinity × tensor slicing: the 2-D parallel grid of Table 1.
//!
//! Four rank threads form a 2x2 grid: two tensor-parallel groups (each
//! holding half the attention heads and FFN channels of every layer) and
//! two data-parallel groups (each ZeRO-partitioning its slice and
//! offloading it to NVMe). The run is compared against a flat mp=1
//! configuration: both must follow the same loss trajectory.
//!
//! Run with: `cargo run --release --example tensor_parallel`

use zero_infinity_suite::model::GptConfig;
use zero_infinity_suite::optim::AdamConfig;
use zero_infinity_suite::zero::{train_gpt_2d, Spec2D, Strategy};

fn main() {
    let model = GptConfig { vocab: 32, hidden: 16, layers: 2, heads: 4, seq: 8, seed: 5 };
    let base = Spec2D {
        model,
        strategy: Strategy::infinity_nvme().with_f32_params(),
        mp: 2,
        dp: 2,
        micro_batch: 2,
        steps: 6,
        adam: AdamConfig { lr: 0.01, ..Default::default() },
    };

    println!("2-D grid: mp=2 (tensor slicing) x dp=2 (ZeRO-Infinity NVMe), 4 rank threads");
    let sliced = train_gpt_2d(&base).expect("2-D training");
    let flat = train_gpt_2d(&Spec2D { mp: 1, ..base }).expect("flat training");

    println!();
    println!("{:>5} {:>14} {:>14} {:>12}", "step", "mp=2 x dp=2", "mp=1 x dp=2", "|Δ|");
    for (i, (a, b)) in sliced.iter().zip(&flat).enumerate() {
        println!("{i:>5} {a:>14.6} {b:>14.6} {:>12.2e}", (a - b).abs());
        assert!((a - b).abs() < 1e-3, "slicing changed the trajectory");
    }
    println!();
    println!(
        "Tensor slicing is numerically transparent: each rank held only half of \
         every layer, ZeRO-partitioned across its data-parallel group, on NVMe."
    );
}
